package core

import (
	"bytes"
	"context"
	"testing"

	"skewvar/internal/ctree"
	"skewvar/internal/faults"
	"skewvar/internal/obs"
)

// obsFlowConfig is fastFlowConfig with an instrumented recorder driven by a
// fake clock, so traces are reproducible byte streams.
func obsFlowConfig(workers int) (FlowConfig, *obs.Recorder) {
	rec := obs.NewWithClock(obs.NewFakeClock(1))
	cfg := fastFlowConfig()
	cfg.Workers = workers
	cfg.Obs = rec
	return cfg, rec
}

// TestTraceParallelEquivalence is the golden-trace half of the worker-count
// contract: the canonical trace (kind + ancestor path + attrs, ids and
// timestamps stripped, lines sorted) and every schedule-independent counter
// must be byte-identical at -j 1 and -j 4. Cache traffic is deliberately
// excluded — concurrent trials race on shared cache keys, which is why those
// numbers are published as gauges only (docs/PARALLELISM.md).
func TestTraceParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow trace comparison in short mode")
	}
	_, ch := testTech(t)
	var model *MLStageModel

	run := func(workers int) (canon []byte, snap obs.Snapshot) {
		d, tm := smallDesign(t, 100)
		if model == nil {
			model = cheapModel(t, tm.Tech)
		}
		cfg, rec := obsFlowConfig(workers)
		if _, err := RunFlows(context.Background(), tm, ch, d, model, cfg); err != nil {
			t.Fatalf("j=%d: %v", workers, err)
		}
		recs := rec.Records()
		if err := obs.ValidateTrace(recs); err != nil {
			t.Fatalf("j=%d: invalid trace: %v", workers, err)
		}
		return obs.CanonicalTrace(recs), rec.Snapshot()
	}

	canon1, snap1 := run(1)
	canon4, snap4 := run(4)
	if !bytes.Equal(canon1, canon4) {
		t.Errorf("canonical traces differ between j=1 and j=4:\n--- j=1 ---\n%s\n--- j=4 ---\n%s", canon1, canon4)
	}
	if len(canon1) == 0 {
		t.Fatal("instrumented flow produced an empty trace")
	}
	for _, name := range []string{
		"local.moves.enumerated", "local.moves.predicted", "local.moves.tried",
		"local.moves.accepted", "local.moves.rejected",
		"lp.solves", "lp.iterations", "lp.failures",
	} {
		if snap1.Counters[name] != snap4.Counters[name] {
			t.Errorf("counter %s: j=1 %d != j=4 %d", name, snap1.Counters[name], snap4.Counters[name])
		}
	}
	if snap1.Counters["local.moves.tried"] == 0 {
		t.Error("flow tried no moves; the equivalence check is vacuous")
	}
	if snap1.Gauges["sta.net_cache.hit_rate"] <= 0 {
		t.Error("flow published no cache hit-rate gauge")
	}
}

// TestTraceResumeEquivalence pins the replay-exact resume contract in trace
// form: the accepted-move event stream of an interrupted run concatenated
// with its resumed continuation equals the stream of an uninterrupted run,
// in order.
func TestTraceResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("three full local stages in short mode")
	}
	_, ch := testTech(t)
	d0, tm0 := smallDesign(t, 100)
	model := cheapModel(t, tm0.Tech)
	ckpt := t.TempDir() + "/resume.ckpt"

	localOnly := func(workers int) (FlowConfig, *obs.Recorder) {
		cfg, rec := obsFlowConfig(workers)
		cfg.Only = []string{"local"}
		cfg.Local.MaxIters = 4
		cfg.Checkpoint = CheckpointConfig{Path: ckpt, EveryIters: 1}
		return cfg, rec
	}
	// The resume contract is about the accepted-move sequence; the events'
	// predicted/actual gain diagnostics may drift by an ulp (the resumed
	// baseline comes from a fresh analysis where the full run's was
	// incremental), so project each event down to its move identity.
	accepts := func(rec *obs.Recorder) []obs.Record {
		evs := obs.FilterNames(rec.Records(), "local.accept")
		out := make([]obs.Record, 0, len(evs))
		for _, ev := range evs {
			p := obs.Record{Kind: ev.Kind, Name: ev.Name}
			for _, a := range ev.Attrs {
				if a.Key == "move" {
					p.Attrs = append(p.Attrs, a)
				}
			}
			out = append(out, p)
		}
		return out
	}

	// Uninterrupted reference run.
	fullCfg, fullRec := localOnly(1)
	fullCfg.Checkpoint.Path = t.TempDir() + "/full.ckpt"
	if _, err := RunFlows(context.Background(), tm0, ch, d0, model, fullCfg); err != nil {
		t.Fatalf("full run: %v", err)
	}
	full := accepts(fullRec)
	if len(full) < 3 {
		t.Fatalf("full run accepted only %d moves; too short to interrupt meaningfully", len(full))
	}

	// Interrupted run: cancel after two completed iterations; the cancel
	// path saves a mid-stage checkpoint.
	d1, tm1 := smallDesign(t, 100)
	intCfg, intRec := localOnly(1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	intCfg.Local.OnIter = func(iter int, _ *ctree.Tree) {
		if iter >= 2 {
			cancel()
		}
	}
	if _, err := RunFlows(ctx, tm1, ch, d1, model, intCfg); err == nil {
		t.Fatal("interrupted run returned no error")
	}

	// Resumed run.
	cp, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("loading checkpoint: %v", err)
	}
	d2, tm2 := smallDesign(t, 100)
	resCfg, resRec := localOnly(1)
	resCfg.Resume = cp
	if _, err := RunFlows(context.Background(), tm2, ch, d2, model, resCfg); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	joined := append(append([]obs.Record{}, accepts(intRec)...), accepts(resRec)...)
	got := obs.CanonicalOrdered(joined)
	want := obs.CanonicalOrdered(full)
	if !bytes.Equal(got, want) {
		t.Errorf("interrupted+resumed accept stream != full run:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestFaultEventsInTrace: injected faults surface as deterministic
// fault.injected events carrying the hook name and call index.
func TestFaultEventsInTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented flow in short mode")
	}
	_, ch := testTech(t)
	d, tm := smallDesign(t, 100)
	model := cheapModel(t, tm.Tech)

	cfg, rec := obsFlowConfig(1)
	cfg.Only = []string{"local"}
	cfg.Faults = faults.New(1).Arm(faults.MoveApply, faults.Spec{First: 2})
	res, err := RunFlows(context.Background(), tm, ch, d, model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Error("flow absorbed faults but is not Degraded")
	}
	events := obs.FilterNames(rec.Records(), "fault.injected")
	if len(events) != 2 {
		t.Fatalf("fault.injected events = %d, want 2", len(events))
	}
	for i, ev := range events {
		var hook string
		var call float64
		for _, a := range ev.Attrs {
			switch a.Key {
			case "hook":
				hook = a.Str
			case "call":
				call = a.Num
			}
		}
		if hook != faults.MoveApply {
			t.Errorf("event %d: hook = %q, want %q", i, hook, faults.MoveApply)
		}
		if call != float64(i+1) {
			t.Errorf("event %d: call = %v, want %d", i, call, i+1)
		}
	}
}
