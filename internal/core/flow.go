package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"skewvar/internal/ctree"
	"skewvar/internal/faults"
	"skewvar/internal/lut"
	"skewvar/internal/power"
	"skewvar/internal/resilience"
	"skewvar/internal/sta"
)

// Metrics is one Table-5 row fragment for one tree under one flow.
type Metrics struct {
	SumVarPS float64   // Σ of per-pair max normalized skew variation
	Norm     float64   // SumVarPS / original SumVarPS
	SkewPS   []float64 // local skew per corner
	NumCells int
	PowerMW  float64
	AreaUM2  float64
}

// Snapshot measures a tree against the design's pair set.
func Snapshot(tm *sta.Timer, tr *ctree.Tree, pairs []ctree.SinkPair, alphas []float64) Metrics {
	a := tm.Analyze(tr)
	m := Metrics{SumVarPS: sta.SumVariation(a, alphas, pairs)}
	for k := 0; k < a.K; k++ {
		m.SkewPS = append(m.SkewPS, sta.MaxAbsSkew(a, k, pairs))
	}
	pr := power.Analyze(tm.Tech, tr)
	m.NumCells = pr.NumCells
	m.PowerMW = pr.PowerMW
	m.AreaUM2 = pr.AreaUM2
	return m
}

// FlowStages lists the paper's three optimization flows in run order.
var FlowStages = []string{"global", "local", "global-local"}

// FlowConfig drives RunFlows.
type FlowConfig struct {
	TopPairs int // pairs in the reported objective (0 = all)
	Global   GlobalConfig
	Local    LocalConfig

	// Only restricts RunFlows to a subset of FlowStages (nil = all three).
	// "global-local" implies the global stage runs as its input even when
	// "global" itself is not requested.
	Only []string

	// Workers bounds the flow's parallelism — the timer's per-corner STA
	// fan-out and the local stage's concurrent move trials (cmd/skewopt's
	// -j flag). 0 = runtime.GOMAXPROCS(0); 1 = the exact serial paths.
	// Results — FlowResult metrics and checkpoint bytes — are identical at
	// any setting. Stage-level Workers values, when set, take precedence.
	Workers int

	// Faults is an optional deterministic fault injector threaded into every
	// stage (nil = no injection).
	Faults *faults.Injector

	// Checkpoint enables periodic checkpointing; Resume restarts from a
	// checkpoint loaded with LoadCheckpoint.
	Checkpoint CheckpointConfig
	Resume     *Checkpoint

	// Logf receives degradation warnings (nil = silent).
	Logf func(format string, args ...interface{})
}

// FlowResult bundles the four Table-5 flows for one testcase.
type FlowResult struct {
	Alphas []float64
	Pairs  int
	Orig   Metrics
	Global Metrics
	Local  Metrics
	GLocal Metrics
	Trees  map[string]*ctree.Tree
	GRes   *GlobalResult
	LRes   *LocalResult // standalone local
	GLRes  *LocalResult // local after global

	// Degraded reports that at least one fault was absorbed on the way to
	// this result (a stage fell back, an LP retried at a reduced budget, a
	// checkpoint write failed, a move was skipped). Faults holds the
	// per-class counts.
	Degraded bool
	Faults   map[string]int
}

// RunFlows executes the paper's three optimization flows (§5.2) against the
// original tree: global alone, local alone, and global followed by local.
// Normalization factors αk are measured once on the original tree and held
// fixed, as in the paper.
//
// Robustness contract: a canceled context stops the flow at the next
// LP-solve or local-iteration boundary and returns the best-so-far result
// alongside a wrapped resilience.ErrCanceled. Stage failures (solver
// errors, recovered panics) never abort the run — the failing stage falls
// back to its input tree, the fault is counted, and Degraded is set; the
// returned tree is never worse than the original under the reported
// objective.
func RunFlows(ctx context.Context, tm *sta.Timer, ch *lut.Char, d *ctree.Design, model StageModel, cfg FlowConfig) (*FlowResult, error) {
	pairs := d.TopPairs(cfg.TopPairs)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: design has no sink pairs: %w", resilience.ErrInvalidDesign)
	}
	stages := cfg.Only
	if len(stages) == 0 {
		stages = FlowStages
	}
	want := map[string]bool{}
	for _, s := range stages {
		switch s {
		case "global", "local", "global-local":
			want[s] = true
		default:
			return nil, fmt.Errorf("core: unknown flow stage %q: %w", s, resilience.ErrInvalidDesign)
		}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tm.Workers = workers

	rec := resilience.NewRecorder()
	a0 := tm.Analyze(d.Tree)
	alphas := sta.Alphas(a0, pairs)

	res := &FlowResult{Alphas: alphas, Pairs: len(pairs), Trees: map[string]*ctree.Tree{}}
	res.Orig = Snapshot(tm, d.Tree, pairs, alphas)
	res.Orig.Norm = 1
	res.Trees["orig"] = d.Tree

	finish := func(err error) (*FlowResult, error) {
		res.Faults = rec.Counts()
		res.Degraded = rec.Total() > 0
		return res, err
	}
	snap := func(tr *ctree.Tree) Metrics {
		m := Snapshot(tm, tr, pairs, alphas)
		m.Norm = m.SumVarPS / res.Orig.SumVarPS
		return m
	}

	// Resume state.
	doneTrees := map[string]*ctree.Tree{}
	resumeStage := ""
	resumeIter := 0
	var partial *ctree.Tree
	if cfg.Resume != nil {
		for _, s := range cfg.Resume.Done {
			if t := cfg.Resume.Trees[s]; t != nil {
				doneTrees[s] = t
			}
		}
		resumeStage = cfg.Resume.Stage
		resumeIter = cfg.Resume.Iter
		partial = cfg.Resume.Trees["partial"]
	}

	var completed []string
	save := func(stage string, iter int, partialTree *ctree.Tree) {
		if cfg.Checkpoint.Path == "" {
			return
		}
		cp := &Checkpoint{Stage: stage, Iter: iter, Done: completed, Trees: map[string]*ctree.Tree{}}
		for _, s := range completed {
			cp.Trees[s] = res.Trees[s]
		}
		if partialTree != nil {
			cp.Trees["partial"] = partialTree
		}
		// Saves run under a fresh context: the most important checkpoint is
		// the one written after cancellation, and it must not be vetoed by
		// the very deadline it is rescuing progress from.
		if err := SaveCheckpoint(context.Background(), cfg.Checkpoint.Path, d, cp, cfg.Faults); err != nil {
			rec.Record("checkpoint-write")
			logf("warning: checkpoint save failed: %v", err)
		}
	}
	every := cfg.Checkpoint.EveryIters
	if every <= 0 {
		every = 1
	}

	gcfg := cfg.Global
	gcfg.TopPairs = cfg.TopPairs
	if gcfg.Faults == nil {
		gcfg.Faults = cfg.Faults
	}
	if gcfg.Rec == nil {
		gcfg.Rec = rec
	}
	if gcfg.Workers == 0 {
		gcfg.Workers = workers
	}
	lcfg := cfg.Local
	lcfg.Model = model
	lcfg.TopPairs = cfg.TopPairs
	if lcfg.Faults == nil {
		lcfg.Faults = cfg.Faults
	}
	if lcfg.Rec == nil {
		lcfg.Rec = rec
	}
	if lcfg.Workers == 0 {
		lcfg.Workers = workers
	}

	// runLocal runs one local stage with mid-stage checkpointing and resume,
	// reporting the last completed iteration for the cancellation save.
	runLocal := func(stage string, base *ctree.Design) (lres *LocalResult, lastIter int, err error) {
		lc := lcfg
		userOnIter := lcfg.OnIter
		lc.OnIter = func(iter int, tree *ctree.Tree) {
			lastIter = iter
			if cfg.Checkpoint.Path != "" && iter%every == 0 {
				save(stage, iter, tree)
			}
			if userOnIter != nil {
				userOnIter(iter, tree)
			}
		}
		if resumeStage == stage && partial != nil {
			base = base.Clone()
			base.Tree = partial.Clone()
			lc.StartIter = resumeIter
			lastIter = resumeIter
		}
		err = resilience.Safely(stage+" stage", func() error {
			var e error
			lres, e = LocalOpt(ctx, tm, base, alphas, lc)
			return e
		})
		return lres, lastIter, err
	}

	// Global stage — also the input of global-local.
	globalTree := d.Tree
	if want["global"] || want["global-local"] {
		if t, ok := doneTrees["global"]; ok {
			globalTree = t
		} else {
			var gres *GlobalResult
			err := resilience.Safely("global stage", func() error {
				var e error
				gres, e = GlobalOpt(ctx, tm, ch, d, alphas, gcfg)
				return e
			})
			switch {
			case errors.Is(err, resilience.ErrCanceled):
				if gres != nil && gres.Tree != nil {
					res.GRes = gres
					res.Trees["global"] = gres.Tree
					res.Global = snap(gres.Tree)
				}
				return finish(err)
			case err != nil:
				rec.Record("stage-fallback")
				logf("warning: global stage failed (%v); keeping the unmodified tree", err)
			default:
				res.GRes = gres
				globalTree = gres.Tree
			}
		}
		res.Trees["global"] = globalTree
		res.Global = snap(globalTree)
		completed = append(completed, "global")
		save("", 0, nil)
	}

	// Local alone.
	if want["local"] {
		if t, ok := doneTrees["local"]; ok {
			res.Trees["local"] = t
			res.Local = snap(t)
		} else {
			lres, lastIter, err := runLocal("local", d)
			switch {
			case errors.Is(err, resilience.ErrCanceled):
				if lres != nil && lres.Tree != nil {
					res.LRes = lres
					res.Trees["local"] = lres.Tree
					res.Local = snap(lres.Tree)
					save("local", lastIter, lres.Tree)
				}
				return finish(err)
			case err != nil:
				rec.Record("stage-fallback")
				logf("warning: local stage failed (%v); keeping the unmodified tree", err)
				res.Trees["local"] = d.Tree
				res.Local = snap(d.Tree)
			default:
				res.LRes = lres
				res.Trees["local"] = lres.Tree
				res.Local = snap(lres.Tree)
			}
		}
		completed = append(completed, "local")
		save("", 0, nil)
	}

	// Global then local.
	if want["global-local"] {
		if t, ok := doneTrees["global-local"]; ok {
			res.Trees["global-local"] = t
			res.GLocal = snap(t)
		} else {
			dg := d.Clone()
			dg.Tree = globalTree.Clone()
			glres, lastIter, err := runLocal("global-local", dg)
			switch {
			case errors.Is(err, resilience.ErrCanceled):
				if glres != nil && glres.Tree != nil {
					res.GLRes = glres
					res.Trees["global-local"] = glres.Tree
					res.GLocal = snap(glres.Tree)
					save("global-local", lastIter, glres.Tree)
				}
				return finish(err)
			case err != nil:
				rec.Record("stage-fallback")
				logf("warning: global-local stage failed (%v); keeping the global tree", err)
				res.Trees["global-local"] = globalTree
				res.GLocal = snap(globalTree)
			default:
				res.GLRes = glres
				res.Trees["global-local"] = glres.Tree
				res.GLocal = snap(glres.Tree)
			}
		}
		completed = append(completed, "global-local")
		save("", 0, nil)
	}
	return finish(nil)
}
