package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"

	"skewvar/internal/ctree"
	"skewvar/internal/faults"
	"skewvar/internal/lut"
	"skewvar/internal/obs"
	"skewvar/internal/power"
	"skewvar/internal/resilience"
	"skewvar/internal/sta"
)

// Metrics is one Table-5 row fragment for one tree under one flow.
type Metrics struct {
	SumVarPS float64   // Σ of per-pair max normalized skew variation
	Norm     float64   // SumVarPS / original SumVarPS
	SkewPS   []float64 // local skew per corner
	NumCells int
	PowerMW  float64
	AreaUM2  float64
}

// Snapshot measures a tree against the design's pair set.
func Snapshot(tm *sta.Timer, tr *ctree.Tree, pairs []ctree.SinkPair, alphas []float64) Metrics {
	a := tm.Analyze(tr)
	m := Metrics{SumVarPS: sta.SumVariation(a, alphas, pairs)}
	for k := 0; k < a.K; k++ {
		m.SkewPS = append(m.SkewPS, sta.MaxAbsSkew(a, k, pairs))
	}
	pr := power.Analyze(tm.Tech, tr)
	m.NumCells = pr.NumCells
	m.PowerMW = pr.PowerMW
	m.AreaUM2 = pr.AreaUM2
	return m
}

// FlowStages lists the paper's three optimization flows in run order.
var FlowStages = []string{"global", "local", "global-local"}

// FlowConfig drives RunFlows.
type FlowConfig struct {
	TopPairs int // pairs in the reported objective (0 = all)
	Global   GlobalConfig
	Local    LocalConfig

	// Only restricts RunFlows to a subset of FlowStages (nil = all three).
	// "global-local" implies the global stage runs as its input even when
	// "global" itself is not requested.
	Only []string

	// Workers bounds the flow's parallelism — the timer's per-corner STA
	// fan-out and the local stage's concurrent move trials (cmd/skewopt's
	// -j flag). 0 = runtime.GOMAXPROCS(0); 1 = the exact serial paths.
	// Results — FlowResult metrics and checkpoint bytes — are identical at
	// any setting. Stage-level Workers values, when set, take precedence.
	Workers int

	// Faults is an optional deterministic fault injector threaded into every
	// stage (nil = no injection).
	Faults *faults.Injector

	// Checkpoint enables periodic checkpointing; Resume restarts from a
	// checkpoint loaded with LoadCheckpoint.
	Checkpoint CheckpointConfig
	Resume     *Checkpoint

	// Obs, when non-nil, receives the run's trace (flow/flow.stage spans,
	// checkpoint and fault events, plus the stage-level spans of GlobalOpt,
	// LocalOpt, and the timer) and metrics (docs/OBSERVABILITY.md). It is
	// installed on the timer and propagated to both stage configs unless
	// they carry their own. Nil (the default) keeps every instrumentation
	// site a no-op.
	Obs *obs.Recorder

	// Logf receives degradation warnings (nil = silent).
	Logf func(format string, args ...interface{})
}

// FlowResult bundles the four Table-5 flows for one testcase.
type FlowResult struct {
	Alphas []float64
	Pairs  int
	Orig   Metrics
	Global Metrics
	Local  Metrics
	GLocal Metrics
	Trees  map[string]*ctree.Tree
	GRes   *GlobalResult
	LRes   *LocalResult // standalone local
	GLRes  *LocalResult // local after global

	// Degraded reports that at least one fault was absorbed on the way to
	// this result (a stage fell back, an LP retried at a reduced budget, a
	// checkpoint write failed, a move was skipped). Faults holds the
	// per-class counts.
	Degraded bool
	Faults   map[string]int
}

// RunFlows executes the paper's three optimization flows (§5.2) against the
// original tree: global alone, local alone, and global followed by local.
// Normalization factors αk are measured once on the original tree and held
// fixed, as in the paper.
//
// Robustness contract: a canceled context stops the flow at the next
// LP-solve or local-iteration boundary and returns the best-so-far result
// alongside a wrapped resilience.ErrCanceled. Stage failures (solver
// errors, recovered panics) never abort the run — the failing stage falls
// back to its input tree, the fault is counted, and Degraded is set; the
// returned tree is never worse than the original under the reported
// objective.
func RunFlows(ctx context.Context, tm *sta.Timer, ch *lut.Char, d *ctree.Design, model StageModel, cfg FlowConfig) (*FlowResult, error) {
	pairs := d.TopPairs(cfg.TopPairs)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: design has no sink pairs: %w", resilience.ErrInvalidDesign)
	}
	stages := cfg.Only
	if len(stages) == 0 {
		stages = FlowStages
	}
	want := map[string]bool{}
	for _, s := range stages {
		switch s {
		case "global", "local", "global-local":
			want[s] = true
		default:
			return nil, fmt.Errorf("core: unknown flow stage %q: %w", s, resilience.ErrInvalidDesign)
		}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tm.Workers = workers
	if cfg.Obs != nil {
		tm.Obs = cfg.Obs
	}

	var fsp *obs.Span
	if cfg.Obs != nil {
		// The worker count is a gauge, not a span attr: the canonical trace
		// must be byte-identical across -j settings.
		cfg.Obs.Gauge("flow.workers").Set(float64(workers))
		fsp = cfg.Obs.StartSpan("flow",
			obs.S("stages", strings.Join(stages, ",")),
			obs.I("pairs", len(pairs)))
		// Injected faults become trace events. Decisions are pre-drawn
		// serially (see LocalOpt) and the per-hook call indices advance
		// deterministically, so the event stream is identical at any -j.
		cfg.Faults.SetObserver(func(hook string, call int) {
			fsp.Event("fault.injected", obs.S("hook", hook), obs.I("call", call))
		})
		defer cfg.Faults.SetObserver(nil)
	}

	rec := resilience.NewRecorder()
	a0 := tm.Analyze(d.Tree)
	alphas := sta.Alphas(a0, pairs)

	res := &FlowResult{Alphas: alphas, Pairs: len(pairs), Trees: map[string]*ctree.Tree{}}
	res.Orig = Snapshot(tm, d.Tree, pairs, alphas)
	res.Orig.Norm = 1
	res.Trees["orig"] = d.Tree

	finish := func(err error) (*FlowResult, error) {
		res.Faults = rec.Counts()
		res.Degraded = rec.Total() > 0
		if cfg.Obs != nil {
			// Terminal gauges. Cache traffic is exact but schedule-dependent
			// under concurrent trials, so it lives here in the metrics
			// snapshot and never in the trace (docs/PARALLELISM.md).
			cs := tm.CacheStats()
			cfg.Obs.Gauge("sta.net_cache.hits").Set(float64(cs.Hits))
			cfg.Obs.Gauge("sta.net_cache.misses").Set(float64(cs.Misses))
			cfg.Obs.Gauge("sta.net_cache.evictions").Set(float64(cs.Evictions))
			cfg.Obs.Gauge("sta.net_cache.hit_rate").Set(cs.HitRate())
			if tried := cfg.Obs.Counter("local.moves.tried").Value(); tried > 0 {
				acc := cfg.Obs.Counter("local.moves.accepted").Value()
				cfg.Obs.Gauge("local.move_accept_rate").Set(float64(acc) / float64(tried))
			}
			fsp.End()
		}
		return res, err
	}
	snap := func(tr *ctree.Tree) Metrics {
		m := Snapshot(tm, tr, pairs, alphas)
		m.Norm = m.SumVarPS / res.Orig.SumVarPS
		return m
	}

	// Resume state.
	doneTrees := map[string]*ctree.Tree{}
	resumeStage := ""
	resumeIter := 0
	var partial *ctree.Tree
	if cfg.Resume != nil {
		for _, s := range cfg.Resume.Done {
			if t := cfg.Resume.Trees[s]; t != nil {
				doneTrees[s] = t
			}
		}
		resumeStage = cfg.Resume.Stage
		resumeIter = cfg.Resume.Iter
		partial = cfg.Resume.Trees["partial"]
	}

	var completed []string
	save := func(stage string, iter int, partialTree *ctree.Tree) {
		if cfg.Checkpoint.Path == "" {
			return
		}
		cp := &Checkpoint{Stage: stage, Iter: iter, Done: completed, Trees: map[string]*ctree.Tree{}}
		for _, s := range completed {
			cp.Trees[s] = res.Trees[s]
		}
		if partialTree != nil {
			cp.Trees["partial"] = partialTree
		}
		// Saves run under a fresh context: the most important checkpoint is
		// the one written after cancellation, and it must not be vetoed by
		// the very deadline it is rescuing progress from.
		// Checkpoint events carry the stage/iter but never the path: the
		// canonical trace must compare across runs in different directories.
		if err := SaveCheckpoint(context.Background(), cfg.Checkpoint.Path, d, cp, cfg.Faults); err != nil {
			rec.Record("checkpoint-write")
			logf("warning: checkpoint save failed: %v", err)
			if fsp != nil {
				fsp.Event("flow.checkpoint.failed", obs.S("stage", stage), obs.I("iter", iter))
			}
			return
		}
		if fsp != nil {
			fsp.Event("flow.checkpoint.saved", obs.S("stage", stage), obs.I("iter", iter))
		}
	}
	every := cfg.Checkpoint.EveryIters
	if every <= 0 {
		every = 1
	}

	gcfg := cfg.Global
	gcfg.TopPairs = cfg.TopPairs
	if gcfg.Faults == nil {
		gcfg.Faults = cfg.Faults
	}
	if gcfg.Rec == nil {
		gcfg.Rec = rec
	}
	if gcfg.Workers == 0 {
		gcfg.Workers = workers
	}
	if gcfg.Obs == nil {
		gcfg.Obs = cfg.Obs
	}
	lcfg := cfg.Local
	lcfg.Model = model
	lcfg.TopPairs = cfg.TopPairs
	if lcfg.Faults == nil {
		lcfg.Faults = cfg.Faults
	}
	if lcfg.Rec == nil {
		lcfg.Rec = rec
	}
	if lcfg.Workers == 0 {
		lcfg.Workers = workers
	}
	if lcfg.Obs == nil {
		lcfg.Obs = cfg.Obs
	}

	// runLocal runs one local stage with mid-stage checkpointing and resume,
	// reporting the last completed iteration for the cancellation save.
	runLocal := func(stage string, base *ctree.Design) (lres *LocalResult, lastIter int, err error) {
		lc := lcfg
		userOnIter := lcfg.OnIter
		lc.OnIter = func(iter int, tree *ctree.Tree) {
			lastIter = iter
			if cfg.Checkpoint.Path != "" && iter%every == 0 {
				save(stage, iter, tree)
			}
			if userOnIter != nil {
				userOnIter(iter, tree)
			}
		}
		if resumeStage == stage && partial != nil {
			base = base.Clone()
			base.Tree = partial.Clone()
			lc.StartIter = resumeIter
			lastIter = resumeIter
		}
		err = resilience.Safely(stage+" stage", func() error {
			var e error
			lres, e = LocalOpt(ctx, tm, base, alphas, lc)
			return e
		})
		return lres, lastIter, err
	}

	// Global stage — also the input of global-local.
	globalTree := d.Tree
	if want["global"] || want["global-local"] {
		var ssp *obs.Span
		if fsp != nil {
			ssp = fsp.StartChild("flow.stage", obs.S("stage", "global"))
		}
		if t, ok := doneTrees["global"]; ok {
			globalTree = t
			if ssp != nil {
				ssp.Event("flow.stage.restored", obs.S("stage", "global"))
			}
		} else {
			var gres *GlobalResult
			err := resilience.Safely("global stage", func() error {
				var e error
				gres, e = GlobalOpt(ctx, tm, ch, d, alphas, gcfg)
				return e
			})
			switch {
			case errors.Is(err, resilience.ErrCanceled):
				if gres != nil && gres.Tree != nil {
					res.GRes = gres
					res.Trees["global"] = gres.Tree
					res.Global = snap(gres.Tree)
				}
				ssp.End()
				return finish(err)
			case err != nil:
				rec.Record("stage-fallback")
				if ssp != nil {
					ssp.Event("flow.stage.fallback", obs.S("stage", "global"))
				}
				logf("warning: global stage failed (%v); keeping the unmodified tree", err)
			default:
				res.GRes = gres
				globalTree = gres.Tree
			}
		}
		res.Trees["global"] = globalTree
		res.Global = snap(globalTree)
		completed = append(completed, "global")
		save("", 0, nil)
		ssp.End()
	}

	// Local alone.
	if want["local"] {
		var ssp *obs.Span
		if fsp != nil {
			ssp = fsp.StartChild("flow.stage", obs.S("stage", "local"))
		}
		if t, ok := doneTrees["local"]; ok {
			res.Trees["local"] = t
			res.Local = snap(t)
			if ssp != nil {
				ssp.Event("flow.stage.restored", obs.S("stage", "local"))
			}
		} else {
			lres, lastIter, err := runLocal("local", d)
			switch {
			case errors.Is(err, resilience.ErrCanceled):
				if lres != nil && lres.Tree != nil {
					res.LRes = lres
					res.Trees["local"] = lres.Tree
					res.Local = snap(lres.Tree)
					save("local", lastIter, lres.Tree)
				}
				ssp.End()
				return finish(err)
			case err != nil:
				rec.Record("stage-fallback")
				if ssp != nil {
					ssp.Event("flow.stage.fallback", obs.S("stage", "local"))
				}
				logf("warning: local stage failed (%v); keeping the unmodified tree", err)
				res.Trees["local"] = d.Tree
				res.Local = snap(d.Tree)
			default:
				res.LRes = lres
				res.Trees["local"] = lres.Tree
				res.Local = snap(lres.Tree)
			}
		}
		completed = append(completed, "local")
		save("", 0, nil)
		ssp.End()
	}

	// Global then local.
	if want["global-local"] {
		var ssp *obs.Span
		if fsp != nil {
			ssp = fsp.StartChild("flow.stage", obs.S("stage", "global-local"))
		}
		if t, ok := doneTrees["global-local"]; ok {
			res.Trees["global-local"] = t
			res.GLocal = snap(t)
			if ssp != nil {
				ssp.Event("flow.stage.restored", obs.S("stage", "global-local"))
			}
		} else {
			dg := d.Clone()
			dg.Tree = globalTree.Clone()
			glres, lastIter, err := runLocal("global-local", dg)
			switch {
			case errors.Is(err, resilience.ErrCanceled):
				if glres != nil && glres.Tree != nil {
					res.GLRes = glres
					res.Trees["global-local"] = glres.Tree
					res.GLocal = snap(glres.Tree)
					save("global-local", lastIter, glres.Tree)
				}
				ssp.End()
				return finish(err)
			case err != nil:
				rec.Record("stage-fallback")
				if ssp != nil {
					ssp.Event("flow.stage.fallback", obs.S("stage", "global-local"))
				}
				logf("warning: global-local stage failed (%v); keeping the global tree", err)
				res.Trees["global-local"] = globalTree
				res.GLocal = snap(globalTree)
			default:
				res.GLRes = glres
				res.Trees["global-local"] = glres.Tree
				res.GLocal = snap(glres.Tree)
			}
		}
		completed = append(completed, "global-local")
		save("", 0, nil)
		ssp.End()
	}
	return finish(nil)
}
