package core

import (
	"fmt"

	"skewvar/internal/ctree"
	"skewvar/internal/lut"
	"skewvar/internal/power"
	"skewvar/internal/sta"
)

// Metrics is one Table-5 row fragment for one tree under one flow.
type Metrics struct {
	SumVarPS float64   // Σ of per-pair max normalized skew variation
	Norm     float64   // SumVarPS / original SumVarPS
	SkewPS   []float64 // local skew per corner
	NumCells int
	PowerMW  float64
	AreaUM2  float64
}

// Snapshot measures a tree against the design's pair set.
func Snapshot(tm *sta.Timer, tr *ctree.Tree, pairs []ctree.SinkPair, alphas []float64) Metrics {
	a := tm.Analyze(tr)
	m := Metrics{SumVarPS: sta.SumVariation(a, alphas, pairs)}
	for k := 0; k < a.K; k++ {
		m.SkewPS = append(m.SkewPS, sta.MaxAbsSkew(a, k, pairs))
	}
	pr := power.Analyze(tm.Tech, tr)
	m.NumCells = pr.NumCells
	m.PowerMW = pr.PowerMW
	m.AreaUM2 = pr.AreaUM2
	return m
}

// FlowConfig drives RunFlows.
type FlowConfig struct {
	TopPairs int // pairs in the reported objective (0 = all)
	Global   GlobalConfig
	Local    LocalConfig
}

// FlowResult bundles the four Table-5 flows for one testcase.
type FlowResult struct {
	Alphas []float64
	Pairs  int
	Orig   Metrics
	Global Metrics
	Local  Metrics
	GLocal Metrics
	Trees  map[string]*ctree.Tree
	GRes   *GlobalResult
	LRes   *LocalResult // standalone local
	GLRes  *LocalResult // local after global
}

// RunFlows executes the paper's three optimization flows (§5.2) against the
// original tree: global alone, local alone, and global followed by local.
// Normalization factors αk are measured once on the original tree and held
// fixed, as in the paper.
func RunFlows(tm *sta.Timer, ch *lut.Char, d *ctree.Design, model StageModel, cfg FlowConfig) (*FlowResult, error) {
	pairs := d.TopPairs(cfg.TopPairs)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: design has no sink pairs")
	}
	a0 := tm.Analyze(d.Tree)
	alphas := sta.Alphas(a0, pairs)

	res := &FlowResult{Alphas: alphas, Pairs: len(pairs), Trees: map[string]*ctree.Tree{}}
	res.Orig = Snapshot(tm, d.Tree, pairs, alphas)
	res.Orig.Norm = 1
	res.Trees["orig"] = d.Tree

	// Global alone.
	gcfg := cfg.Global
	gcfg.TopPairs = cfg.TopPairs
	gres, err := GlobalOpt(tm, ch, d, alphas, gcfg)
	if err != nil {
		return nil, fmt.Errorf("core: global flow: %w", err)
	}
	res.GRes = gres
	res.Global = Snapshot(tm, gres.Tree, pairs, alphas)
	res.Global.Norm = res.Global.SumVarPS / res.Orig.SumVarPS
	res.Trees["global"] = gres.Tree

	// Local alone.
	lcfg := cfg.Local
	lcfg.Model = model
	lcfg.TopPairs = cfg.TopPairs
	lres, err := LocalOpt(tm, d, alphas, lcfg)
	if err != nil {
		return nil, fmt.Errorf("core: local flow: %w", err)
	}
	res.LRes = lres
	res.Local = Snapshot(tm, lres.Tree, pairs, alphas)
	res.Local.Norm = res.Local.SumVarPS / res.Orig.SumVarPS
	res.Trees["local"] = lres.Tree

	// Global then local.
	dg := d.Clone()
	dg.Tree = gres.Tree.Clone()
	glres, err := LocalOpt(tm, dg, alphas, lcfg)
	if err != nil {
		return nil, fmt.Errorf("core: global-local flow: %w", err)
	}
	res.GLRes = glres
	res.GLocal = Snapshot(tm, glres.Tree, pairs, alphas)
	res.GLocal.Norm = res.GLocal.SumVarPS / res.Orig.SumVarPS
	res.Trees["global-local"] = glres.Tree
	return res, nil
}
