package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"skewvar/internal/ctree"
	"skewvar/internal/eco"
	"skewvar/internal/faults"
	"skewvar/internal/legalize"
	"skewvar/internal/lp"
	"skewvar/internal/lut"
	"skewvar/internal/obs"
	"skewvar/internal/resilience"
	"skewvar/internal/sta"
)

// GlobalConfig tunes the LP-based global optimization. Zero values select
// defaults.
type GlobalConfig struct {
	TopPairs      int       // pairs optimized (default 240)
	MaxPairsPerLP int       // block size (default 250 — usually one block; arcs shared with out-of-block pairs are frozen, so prefer a single block when the LP fits)
	MaxArcsPerLP  int       // arc cap per block (default 400)
	USweep        []float64 // ΣV upper-bound fractions swept (default {0.9, 0.8, 0.6})
	Beta          float64   // arc-delay growth bound of constraint (10) (default 1.2)
	DmaxMargin    float64   // max-latency margin of constraint (9) (default 1.05)
	MaxSinkRows   int       // sinks sampled for constraint (9) (default 30)
	Eq7AllCorners bool      // apply the local-skew guard (7) at every corner, not just nominal
	Eq8           bool      // include the (ck,c0) variation guard (8) rows
	RatioRounds   int       // row-generation rounds for the W-window (11), free-Δ mode (default 3)
	MinDeltaPS    float64   // smallest per-arc change realized by a full rebuild (default 6)
	LPIters       int       // simplex iteration cap per solve (0 = solver default)

	// Faults is an optional deterministic fault injector (nil = no
	// injection); Rec receives fault counts from the degradation paths
	// (nil = not recorded). Both are normally threaded in by RunFlows.
	Faults *faults.Injector
	Rec    *resilience.Recorder

	// Workers, when positive, is installed as the timer's per-corner STA
	// parallelism for the run (normally threaded in by RunFlows; the LP
	// itself is serial). Results are identical at any setting.
	Workers int

	// Obs, when non-nil, receives the global.opt/global.sweep span tree,
	// lp.solve and global.budget_halved events, and the LP counters
	// (docs/OBSERVABILITY.md). Normally set by RunFlows. Nil keeps
	// instrumentation free.
	Obs *obs.Recorder

	// FreeDelta switches to the paper's literal formulation with an
	// independent Δ variable per (arc, corner), guarded only by the
	// W-window (11) via row generation. The default (false) parameterizes
	// each arc's change by two physically realizable knobs — wire snaking
	// and gate (inverter-pair) delay — whose per-corner signatures come
	// from the characterized LUTs, so every LP solution is
	// ECO-implementable by construction. FreeDelta is kept as an ablation:
	// it demonstrates why the paper needs constraint (11) at all
	// (unconstrained per-corner deltas ask for physically impossible
	// single-corner changes).
	FreeDelta bool
}

func (c *GlobalConfig) setDefaults() {
	if c.TopPairs == 0 {
		c.TopPairs = 240
	}
	if c.MaxPairsPerLP == 0 {
		c.MaxPairsPerLP = 250
	}
	if c.MaxArcsPerLP == 0 {
		c.MaxArcsPerLP = 1200
	}
	if len(c.USweep) == 0 {
		c.USweep = []float64{0.9, 0.8, 0.6}
	}
	if c.Beta == 0 {
		c.Beta = 1.2
	}
	if c.DmaxMargin == 0 {
		c.DmaxMargin = 1.05
	}
	if c.MaxSinkRows == 0 {
		c.MaxSinkRows = 30
	}
	if c.RatioRounds == 0 {
		c.RatioRounds = 3
	}
	if c.MinDeltaPS == 0 {
		c.MinDeltaPS = 6
	}
}

// debugECO enables verbose ECO tracing (tests only).
var debugECO = false

// LPStat records one block LP solve.
type LPStat struct {
	UFrac       float64
	Block       int
	Rows, Cols  int
	Iters       int
	Refactors   int // basis refactorizations (numerical-health signal)
	Status      lp.Status
	AbsDeltaSum float64 // LP objective (nominal-ps units of change)
	ArcsChanged int
	Reverted    bool // golden check rejected the block's ECOs
}

// GlobalResult is the outcome of the global optimization.
type GlobalResult struct {
	Tree         *ctree.Tree
	SumVar0      float64
	SumVar       float64
	BestU        float64
	LPStats      []LPStat
	ArcsRebuilt  int
	ECOSelectErr float64 // mean realization error of applied arcs

	Degraded   bool // at least one LP failed or the pair budget was halved
	LPFailures int  // block LP solves that errored (injected or real)
	PairBudget int  // MaxPairsPerLP the returned sweep actually used
}

// GlobalOpt runs the LP-guided global optimization: per criticality block it
// solves the Eq. (4)–(11) LP for the desired per-arc per-corner delay
// changes under a swept ΣV bound U, realizes them with routing detours and
// the Algorithm-1 inverter-pair ECO, and keeps the swept tree with the best
// golden ΣV that does not degrade local skew.
//
// Degradation ladder: when block LPs fail (solver error, injected fault,
// recovered panic), the whole sweep is retried with a halved MaxPairsPerLP
// — smaller LPs are cheaper and numerically easier — down to a floor, after
// which the best attempt (never worse than the unmodified tree) is
// returned. A canceled context stops at the next block boundary and returns
// the best-so-far tree with a wrapped resilience.ErrCanceled.
func GlobalOpt(ctx context.Context, tm *sta.Timer, ch *lut.Char, d *ctree.Design, alphas []float64, cfg GlobalConfig) (*GlobalResult, error) {
	cfg.setDefaults()
	pairs := d.TopPairs(cfg.TopPairs)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: no sink pairs: %w", resilience.ErrInvalidDesign)
	}
	if cfg.Workers > 0 {
		tm.Workers = cfg.Workers
	}
	// Envelopes for every corner pair (constraint (11) / Figure 2).
	K := tm.Tech.NumCorners()
	envs := map[[2]int]*lut.Envelope{}
	for k := 0; k < K; k++ {
		for k2 := k + 1; k2 < K; k2++ {
			e, err := ch.FitEnvelope(k, k2)
			if err != nil {
				return nil, fmt.Errorf("core: envelope (%d,%d): %w", k, k2, err)
			}
			envs[[2]int{k, k2}] = e
		}
	}
	lg := legalize.New(d.Die, tm.Tech.SiteW, tm.Tech.RowH)
	reb := eco.NewRebuilder(tm.Tech, ch, lg)

	var gsp *obs.Span
	if cfg.Obs != nil {
		gsp = cfg.Obs.StartSpan("global.opt",
			obs.I("pairs", len(pairs)), obs.I("u_fracs", len(cfg.USweep)))
	}
	const minPairsPerLP = 16
	budget := cfg.MaxPairsPerLP
	sawFailure := false
	var best *GlobalResult
	for {
		acfg := cfg
		acfg.MaxPairsPerLP = budget
		res, err := globalSweep(ctx, tm, reb, d, alphas, pairs, envs, acfg, gsp)
		res.PairBudget = budget
		if best == nil || res.SumVar < best.SumVar {
			best = res
		}
		sawFailure = sawFailure || res.LPFailures > 0
		best.Degraded = sawFailure
		if err != nil {
			gsp.End()
			return best, err
		}
		if res.LPFailures == 0 || budget <= minPairsPerLP {
			gsp.End()
			return best, nil
		}
		cfg.Rec.Record("lp-budget-halved")
		budget /= 2
		if budget < minPairsPerLP {
			budget = minPairsPerLP
		}
		if gsp != nil {
			gsp.Event("global.budget_halved", obs.I("pairs_per_lp", budget))
		}
	}
}

// emitLPStat turns one block-LP stat into an lp.solve trace event (on sp)
// and the lp.* counters. The stream is deterministic: the simplex is serial
// and its inputs are bit-identical at any worker count.
func emitLPStat(obsr *obs.Recorder, sp *obs.Span, stat LPStat) {
	if obsr == nil {
		return
	}
	obsr.Counter("lp.solves").Inc()
	obsr.Counter("lp.iterations").Add(int64(stat.Iters))
	if sp != nil {
		reverted := "no"
		if stat.Reverted {
			reverted = "yes"
		}
		sp.Event("lp.solve",
			obs.I("block", stat.Block),
			obs.F("u_frac", stat.UFrac),
			obs.I("rows", stat.Rows),
			obs.I("cols", stat.Cols),
			obs.I("iters", stat.Iters),
			obs.I("refactors", stat.Refactors),
			obs.S("status", stat.Status.String()),
			obs.F("objective_ps", stat.AbsDeltaSum),
			obs.I("arcs_changed", stat.ArcsChanged),
			obs.S("reverted", reverted))
	}
}

// globalSweep runs one full U-sweep at a fixed pair budget, absorbing block
// failures (skipping the block) and counting them in LPFailures. Spans and
// events land under gsp (nil = untraced).
func globalSweep(ctx context.Context, tm *sta.Timer, reb *eco.Rebuilder, d *ctree.Design, alphas []float64, pairs []ctree.SinkPair, envs map[[2]int]*lut.Envelope, cfg GlobalConfig, gsp *obs.Span) (*GlobalResult, error) {
	a0 := tm.Analyze(d.Tree)
	res := &GlobalResult{SumVar0: sta.SumVariation(a0, alphas, pairs)}
	skew0 := make([]float64, a0.K)
	for k := range skew0 {
		skew0[k] = sta.MaxAbsSkew(a0, k, pairs)
	}
	blocks := partitionPairs(d.Tree, pairs, cfg.MaxPairsPerLP)

	best := d.Tree
	bestVar := res.SumVar0
	bestU := 0.0
	finalize := func() {
		res.Tree = best.Clone()
		res.SumVar = bestVar
		res.BestU = bestU
	}
	for _, frac := range cfg.USweep {
		var usp *obs.Span
		if gsp != nil {
			usp = gsp.StartChild("global.sweep",
				obs.F("u_frac", frac), obs.I("blocks", len(blocks)))
		}
		tree := d.Tree.Clone()
		rebuilt := 0
		var selErrSum float64
		var selErrN int
		prevVar := res.SumVar0
		treeOK := true
		for bi, blk := range blocks {
			if cerr := resilience.Canceled(ctx); cerr != nil {
				usp.End()
				finalize()
				return res, cerr
			}
			pre := tree.Clone()
			var stat LPStat
			var n, en int
			var es float64
			var lpErr error
			perr := resilience.Safely("global block", func() error {
				stat, n, es, en, lpErr = optimizeBlock(tm, reb, tree, blk, pairs, alphas, envs, cfg, frac)
				return nil
			})
			if perr != nil {
				tree = pre
				cfg.Rec.Record("panic")
				res.LPFailures++
				cfg.Obs.Counter("lp.failures").Inc()
				stat = LPStat{Block: bi, UFrac: frac, Reverted: true}
				res.LPStats = append(res.LPStats, stat)
				emitLPStat(cfg.Obs, usp, stat)
				continue
			}
			if lpErr != nil {
				res.LPFailures++
				cfg.Obs.Counter("lp.failures").Inc()
			}
			stat.Block = bi
			stat.UFrac = frac
			if n > 0 {
				// Per-block golden acceptance: revert ECOs that the
				// discretized realization turned counterproductive or that
				// degraded any corner's local skew.
				aB := tm.Analyze(tree)
				vB := sta.SumVariation(aB, alphas, pairs)
				degraded := vB >= prevVar-1e-9
				if debugECO {
					fmt.Printf("  [block %d U=%.2f] vB=%.0f prev=%.0f", bi, frac, vB, prevVar)
					for k := 0; k < aB.K; k++ {
						fmt.Printf(" skew%d=%.1f/%.1f", k, sta.MaxAbsSkew(aB, k, pairs), skew0[k])
					}
					fmt.Println()
				}
				for k := 0; k < aB.K && !degraded; k++ {
					if sta.MaxAbsSkew(aB, k, pairs) > sta.SkewGuard(skew0[k]) {
						degraded = true
					}
				}
				if degraded {
					tree = pre
					stat.Reverted = true
					n, es, en = 0, 0, 0
				} else {
					prevVar = vB
				}
			}
			res.LPStats = append(res.LPStats, stat)
			emitLPStat(cfg.Obs, usp, stat)
			rebuilt += n
			selErrSum += es
			selErrN += en
		}
		usp.End()
		if err := tree.Validate(); err != nil {
			// A corrupted sweep never becomes the incumbent; drop it and keep
			// sweeping instead of aborting the whole stage.
			cfg.Rec.Record("tree-corrupt")
			res.LPFailures++
			cfg.Obs.Counter("lp.failures").Inc()
			treeOK = false
		}
		if !treeOK {
			continue
		}
		aU := tm.Analyze(tree)
		vU := sta.SumVariation(aU, alphas, pairs)
		ok := true
		for k := 0; k < aU.K; k++ {
			if sta.MaxAbsSkew(aU, k, pairs) > sta.SkewGuard(skew0[k]) {
				ok = false
				break
			}
		}
		if ok && vU < bestVar-1e-6 {
			best, bestVar, bestU = tree, vU, frac
			res.ArcsRebuilt = rebuilt
			if selErrN > 0 {
				res.ECOSelectErr = selErrSum / float64(selErrN)
			}
		}
	}
	finalize()
	return res, nil
}

// partitionPairs splits the pair list into geometry-coherent blocks of at
// most maxPer pairs (so each block's LP shares arcs): pairs are sorted by a
// coarse grid key of their midpoint, then chunked.
func partitionPairs(tr *ctree.Tree, pairs []ctree.SinkPair, maxPer int) [][]ctree.SinkPair {
	type keyed struct {
		p   ctree.SinkPair
		key int64
	}
	ks := make([]keyed, len(pairs))
	for i, p := range pairs {
		a, b := tr.Node(p.A).Loc, tr.Node(p.B).Loc
		mx := (a.X + b.X) / 2
		my := (a.Y + b.Y) / 2
		const cell = 400.0
		ks[i] = keyed{p: p, key: int64(my/cell)<<20 | int64(mx/cell)}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		if ks[i].key != ks[j].key {
			return ks[i].key < ks[j].key
		}
		return ks[i].p.Crit > ks[j].p.Crit
	})
	var out [][]ctree.SinkPair
	for start := 0; start < len(ks); start += maxPer {
		end := start + maxPer
		if end > len(ks) {
			end = len(ks)
		}
		blk := make([]ctree.SinkPair, 0, end-start)
		for _, k := range ks[start:end] {
			blk = append(blk, k.p)
		}
		out = append(out, blk)
	}
	return out
}

// arcKnobs holds the LP variables of one arc.
//
// Parameterized mode: two realizable knobs with per-corner signatures —
// wire snaking w (µm; Δ_k = slopeW_k·w) and gate delay g (nominal ps;
// Δ_k = prof_k·g with prof the LUT gate-stage corner profile).
// Free-Δ mode: an independent (Δ⁺,Δ⁻) pair per corner.
type arcKnobs struct {
	wp, wm, gp, gm int
	slopeW, prof   []float64
	dp, dm         []int
}

// delta returns the arc's solved delay change at corner k.
func (v *arcKnobs) delta(sol *lp.Solution, k int) float64 {
	if v.dp != nil {
		return sol.X[v.dp[k]] - sol.X[v.dm[k]]
	}
	w := sol.X[v.wp] - sol.X[v.wm]
	g := sol.X[v.gp] - sol.X[v.gm]
	return v.slopeW[k]*w + v.prof[k]*g
}

// appendDelta appends mult·Δ_k(arc) to a constraint row under construction.
func (v *arcKnobs) appendDelta(k int, mult float64, idx *[]int, coef *[]float64) {
	if v.dp != nil {
		*idx = append(*idx, v.dp[k], v.dm[k])
		*coef = append(*coef, mult, -mult)
		return
	}
	*idx = append(*idx, v.wp, v.wm, v.gp, v.gm)
	*coef = append(*coef, mult*v.slopeW[k], -mult*v.slopeW[k], mult*v.prof[k], -mult*v.prof[k])
}

// gateProfile returns the per-corner gate-stage delay profile of the arc's
// buffer size, normalized to 1 at the nominal corner: the corner signature
// of adding or removing inverter-pair delay on the arc.
func gateProfile(reb *eco.Rebuilder, tree *ctree.Tree, arc *ctree.Arc) []float64 {
	cellIdx := len(reb.T.Cells) / 2
	for i := len(arc.Interior) - 1; i >= 0; i-- {
		if n := tree.Node(arc.Interior[i]); n != nil && n.Kind == ctree.KindBuffer {
			if ci := reb.T.CellIndex(n.CellName); ci >= 0 {
				cellIdx = ci
			}
			break
		}
	}
	K := reb.T.NumCorners()
	prof := make([]float64, K)
	base := reb.Char.Uniform(cellIdx, 0, reb.T.Nominal)
	for k := 0; k < K; k++ {
		prof[k] = reb.Char.Uniform(cellIdx, 0, k) / base
	}
	return prof
}

// solveLP is the guarded LP entry point of the global stage: it fires the
// lp-solve fault hook, recovers solver panics into typed errors, and counts
// failures — so a wedged or failing simplex degrades one block instead of
// killing the flow.
func solveLP(prob *lp.Problem, opts lp.Options, inj *faults.Injector, rec *resilience.Recorder) (*lp.Solution, error) {
	if inj.Fire(faults.LPSolve) {
		rec.Record("lp-solve")
		return nil, fmt.Errorf("core: injected LP failure: %w", resilience.ErrSolver)
	}
	var sol *lp.Solution
	err := resilience.Safely("lp solve", func() error {
		var e error
		sol, e = prob.Solve(opts)
		return e
	})
	if err != nil {
		rec.Record("lp-solve")
		return sol, err
	}
	return sol, nil
}

// optimizeBlock solves one block LP on the current tree state and realizes
// the resulting per-arc delay changes (detour trims for fine corrections,
// Algorithm-1 rebuilds for coarse ones). It returns the LP stat, the number
// of changed arcs, the accumulated realization error, and the LP solve
// error if the block's LP could not be solved (the block is then a no-op).
func optimizeBlock(tm *sta.Timer, reb *eco.Rebuilder, tree *ctree.Tree, blk, allPairs []ctree.SinkPair, alphas []float64, envs map[[2]int]*lut.Envelope, cfg GlobalConfig, frac float64) (LPStat, int, float64, int, error) {
	a := tm.Analyze(tree)
	seg := ctree.Segment(tree)
	arcD := sta.ArcDelays(a, seg)
	K := a.K

	// Paths and the arc set.
	pathOf := map[ctree.NodeID][]int{}
	arcUse := map[int]int{}
	var valid []ctree.SinkPair
	for _, p := range blk {
		ok := true
		for _, s := range []ctree.NodeID{p.A, p.B} {
			if _, done := pathOf[s]; done {
				continue
			}
			path, err := seg.PathArcs(tree, s)
			if err != nil {
				ok = false
				break
			}
			pathOf[s] = path
		}
		if ok {
			valid = append(valid, p)
			for _, s := range []ctree.NodeID{p.A, p.B} {
				for _, ai := range pathOf[s] {
					arcUse[ai]++
				}
			}
		}
	}
	blk = valid
	if len(blk) == 0 {
		return LPStat{Status: lp.Infeasible}, 0, 0, 0, nil
	}
	// Freeze arcs that out-of-block pairs also traverse: a block's ECO must
	// not shift the skew of pairs its LP cannot see (the per-block golden
	// check would revert the whole block otherwise).
	inBlk := map[[2]ctree.NodeID]bool{}
	for _, p := range blk {
		inBlk[[2]ctree.NodeID{p.A, p.B}] = true
	}
	external := map[int]bool{}
	for _, p := range allPairs {
		if inBlk[[2]ctree.NodeID{p.A, p.B}] {
			continue
		}
		for _, sID := range []ctree.NodeID{p.A, p.B} {
			if path, err := seg.PathArcs(tree, sID); err == nil {
				for _, ai := range path {
					external[ai] = true
				}
			}
		}
	}
	// Cap arcs by dropping trailing pairs.
	arcs := sortedKeys(arcUse)
	for len(arcs) > cfg.MaxArcsPerLP && len(blk) > 1 {
		blk = blk[:len(blk)-1]
		arcUse = map[int]int{}
		for _, p := range blk {
			for _, s := range []ctree.NodeID{p.A, p.B} {
				for _, ai := range pathOf[s] {
					arcUse[ai]++
				}
			}
		}
		arcs = sortedKeys(arcUse)
	}
	// Drop path entries of removed pairs so later constraints only touch
	// arcs that have variables.
	{
		keep := map[ctree.NodeID]bool{}
		for _, p := range blk {
			keep[p.A] = true
			keep[p.B] = true
		}
		for s := range pathOf {
			if !keep[s] {
				delete(pathOf, s)
			}
		}
	}

	// Deterministic NaN-delay injection: poison the first unfrozen arc's
	// delay vector. The NaN flows into the LP variable bounds, trips the
	// problem builder's validation, and exercises the block-skip path the
	// same way a numerically broken timer would.
	if cfg.Faults != nil && len(arcs) > 0 && cfg.Faults.Fire(faults.NaNDelay) {
		cfg.Rec.Record("nan-delay")
		target := arcs[0]
		for _, ai := range arcs {
			if !external[ai] {
				target = ai
				break
			}
		}
		for k := range arcD[target] {
			arcD[target][k] = math.NaN()
		}
	}

	// Per-arc geometry and knob signatures.
	directLen := map[int]float64{}
	slopes := map[int][]float64{}
	profs := map[int][]float64{}
	budgets := map[int]float64{}
	endLoads := map[int]float64{}
	for _, ai := range arcs {
		arc := seg.Arcs[ai]
		directLen[ai] = tree.Node(arc.Top).Loc.Manhattan(tree.Node(arc.Bottom).Loc)
		endLoads[ai] = rebuildEndLoad(tm, tree, arc.Bottom)
		slopes[ai] = reb.TrimSlopes(tree, arc, endLoads[ai])
		profs[ai] = gateProfile(reb, tree, arc)
		budgets[ai] = eco.ArcDetourBudget(tree, arc)
	}

	type lpOut struct {
		sol  *lp.Solution
		stat LPStat
		vars map[int]*arcKnobs
		err  error
	}
	buildSolve := func(allowed map[int]bool) lpOut {
		prob := lp.NewProblem()
		vars := map[int]*arcKnobs{}
		for _, ai := range arcs {
			frozen := external[ai] || (allowed != nil && !allowed[ai])
			v := &arcKnobs{}
			if cfg.FreeDelta {
				for k := 0; k < K; k++ {
					dd := arcD[ai][k]
					up := (cfg.Beta - 1) * dd
					dmin := reb.Char.MinDelayPerUM(k) * directLen[ai]
					down := dd - dmin
					if up < 0 || frozen {
						up = 0
					}
					if down < 0 || frozen {
						down = 0
					}
					v.dp = append(v.dp, prob.AddVar(0, up, 1, ""))
					v.dm = append(v.dm, prob.AddVar(0, down, 1, ""))
				}
			} else {
				v.slopeW = slopes[ai]
				v.prof = profs[ai]
				// Wire knob bounds: removable snaking vs. added snake; gate
				// knob bounds from constraint (10), split half/half so the
				// knobs' sum stays within the arc's range.
				wUp, wDown := 400.0, budgets[ai]
				gUp, gDown := math.Inf(1), math.Inf(1)
				for k := 0; k < K; k++ {
					dd := arcD[ai][k]
					dmin := reb.Char.MinDelayPerUM(k) * directLen[ai]
					if p := v.prof[k]; p > 0 {
						gUp = math.Min(gUp, 0.5*(cfg.Beta-1)*dd/p)
						gDown = math.Min(gDown, 0.5*math.Max(0, dd-dmin)/p)
					}
					if sl := v.slopeW[k]; sl > 0 {
						wUp = math.Min(wUp, 0.5*(cfg.Beta-1)*dd/sl)
						wDown = math.Min(wDown, math.Min(budgets[ai], 0.5*math.Max(0, dd-dmin)/sl))
					}
				}
				if frozen {
					wUp, wDown, gUp, gDown = 0, 0, 0, 0
				}
				wCost := v.slopeW[0]
				if wCost <= 0 {
					wCost = 1e-3
				}
				v.wp = prob.AddVar(0, math.Max(0, wUp), wCost, "")
				v.wm = prob.AddVar(0, math.Max(0, wDown), wCost, "")
				v.gp = prob.AddVar(0, math.Max(0, gUp), 1, "")
				v.gm = prob.AddVar(0, math.Max(0, gDown), 1, "")
			}
			vars[ai] = v
		}
		vVar := make([]int, len(blk))
		var curBlockV float64
		for i, p := range blk {
			vVar[i] = prob.AddVar(0, lp.Inf, 0, "")
			curBlockV += sta.PairVariation(a, alphas, p)
		}
		// pathDelta appends mult·δ(lat(A)−lat(B)) at corner k.
		pathDelta := func(p ctree.SinkPair, k int, mult float64, idx *[]int, coef *[]float64) {
			for _, ai := range pathOf[p.A] {
				vars[ai].appendDelta(k, mult, idx, coef)
			}
			for _, ai := range pathOf[p.B] {
				vars[ai].appendDelta(k, -mult, idx, coef)
			}
		}
		// Constraint (6): V bounds every pairwise-corner normalized
		// variation.
		for i, p := range blk {
			for k := 0; k < K; k++ {
				sk0 := a.Skew(k, p.A, p.B)
				for k2 := k + 1; k2 < K; k2++ {
					s20 := a.Skew(k2, p.A, p.B)
					base := alphas[k]*sk0 - alphas[k2]*s20
					for sign := -1.0; sign <= 1.0; sign += 2 {
						var idx []int
						var coef []float64
						idx = append(idx, vVar[i])
						coef = append(coef, 1)
						pathDelta(p, k, -sign*alphas[k], &idx, &coef)
						pathDelta(p, k2, sign*alphas[k2], &idx, &coef)
						prob.AddConstraint(lp.GE, sign*base, idx, coef)
					}
				}
			}
		}
		// Constraint (5): ΣV ≤ U.
		{
			idx := append([]int(nil), vVar...)
			coef := make([]float64, len(vVar))
			for i := range coef {
				coef[i] = 1
			}
			prob.AddConstraint(lp.LE, frac*curBlockV, idx, coef)
		}
		// Constraint (7): no local-skew degradation.
		maxK7 := 1
		if cfg.Eq7AllCorners {
			maxK7 = K
		}
		for _, p := range blk {
			for k := 0; k < maxK7; k++ {
				s0 := a.Skew(k, p.A, p.B)
				bound := math.Abs(s0) + 1 // 1ps slack avoids freezing at s0≈0
				var idx []int
				var coef []float64
				pathDelta(p, k, 1, &idx, &coef)
				prob.AddConstraint(lp.LE, bound-s0, idx, coef)
				idx, coef = nil, nil
				pathDelta(p, k, -1, &idx, &coef)
				prob.AddConstraint(lp.LE, bound+s0, idx, coef)
			}
		}
		// Constraint (8): keep (ck, c0) variation from degrading (optional).
		if cfg.Eq8 {
			for _, p := range blk {
				s00 := a.Skew(0, p.A, p.B)
				for k := 1; k < K; k++ {
					sk0 := a.Skew(k, p.A, p.B)
					base := alphas[k]*sk0 - s00
					bound := math.Abs(base) + 1
					var idx []int
					var coef []float64
					pathDelta(p, k, alphas[k], &idx, &coef)
					pathDelta(p, 0, -1, &idx, &coef)
					prob.AddConstraint(lp.LE, bound-base, idx, coef)
					idx, coef = nil, nil
					pathDelta(p, k, -alphas[k], &idx, &coef)
					pathDelta(p, 0, 1, &idx, &coef)
					prob.AddConstraint(lp.LE, bound+base, idx, coef)
				}
			}
		}
		// Constraint (9): max-latency bound on a sample of the latest sinks.
		{
			type sl struct {
				s   ctree.NodeID
				lat float64
			}
			var sinks []sl
			for s := range pathOf {
				sinks = append(sinks, sl{s, a.Arrive[0][s]})
			}
			sort.Slice(sinks, func(i, j int) bool {
				if sinks[i].lat != sinks[j].lat {
					return sinks[i].lat > sinks[j].lat
				}
				return sinks[i].s < sinks[j].s
			})
			if len(sinks) > cfg.MaxSinkRows {
				sinks = sinks[:cfg.MaxSinkRows]
			}
			for _, e := range sinks {
				for k := 0; k < K; k++ {
					var idx []int
					var coef []float64
					for _, ai := range pathOf[e.s] {
						vars[ai].appendDelta(k, 1, &idx, &coef)
					}
					prob.AddConstraint(lp.LE, cfg.DmaxMargin*a.MaxLat[k]-a.Arrive[k][e.s], idx, coef)
				}
			}
		}

		// Solve; in free-Δ mode generate W-window (11) rows on violation.
		var sol *lp.Solution
		var err error
		stat := LPStat{}
		maxRounds := 0
		if cfg.FreeDelta {
			maxRounds = cfg.RatioRounds
		}
		for round := 0; ; round++ {
			sol, err = solveLP(prob, lp.Options{MaxIters: cfg.LPIters}, cfg.Faults, cfg.Rec)
			if err != nil || sol.Status != lp.Optimal {
				if sol != nil {
					stat.Status = sol.Status
					stat.Iters = sol.Iterations
					stat.Refactors = sol.Refactors
				}
				stat.Rows = prob.NumRows()
				stat.Cols = prob.NumVars()
				return lpOut{stat: stat, err: err}
			}
			if round >= maxRounds {
				break
			}
			added := 0
			for _, ai := range arcs {
				v := vars[ai]
				x0 := arcD[ai][0] / math.Max(directLen[ai], 1)
				for k := 0; k < K; k++ {
					for k2 := k + 1; k2 < K; k2++ {
						env := envs[[2]int{k, k2}]
						wmin, wmax := env.Bounds(x0)
						// The window gates *changes*: widen the band so the
						// arc's existing ratio stays feasible at Δ=0.
						if arcD[ai][k2] > 1e-6 {
							cur := arcD[ai][k] / arcD[ai][k2]
							if cur > wmax {
								wmax = cur
							}
							if cur < wmin {
								wmin = cur
							}
						}
						num := arcD[ai][k] + v.delta(sol, k)
						den := arcD[ai][k2] + v.delta(sol, k2)
						if den <= 1e-6 {
							continue
						}
						r := num / den
						if r > wmax*(1+1e-6) {
							var idx []int
							var coef []float64
							v.appendDelta(k, 1, &idx, &coef)
							v.appendDelta(k2, -wmax, &idx, &coef)
							prob.AddConstraint(lp.LE, wmax*arcD[ai][k2]-arcD[ai][k], idx, coef)
							added++
						} else if r < wmin*(1-1e-6) {
							var idx []int
							var coef []float64
							v.appendDelta(k, 1, &idx, &coef)
							v.appendDelta(k2, -wmin, &idx, &coef)
							prob.AddConstraint(lp.GE, wmin*arcD[ai][k2]-arcD[ai][k], idx, coef)
							added++
						}
					}
				}
			}
			if added == 0 {
				break
			}
		}
		stat.Status = sol.Status
		stat.Iters = sol.Iterations
		stat.Refactors = sol.Refactors
		stat.Rows = prob.NumRows()
		stat.Cols = prob.NumVars()
		stat.AbsDeltaSum = sol.Obj
		return lpOut{sol: sol, stat: stat, vars: vars}
	}

	// Pass 1: unrestricted. Pass 2: concentrate the change onto the most
	// useful arcs so per-arc deltas are large enough to realize.
	first := buildSolve(nil)
	if first.sol == nil {
		return first.stat, 0, 0, 0, first.err
	}
	type arcReq struct {
		ai  int
		req float64
	}
	var reqs []arcReq
	for _, ai := range arcs {
		var req float64
		for k := 0; k < K; k++ {
			req += math.Abs(first.vars[ai].delta(first.sol, k))
		}
		if req > 1e-6 {
			reqs = append(reqs, arcReq{ai, req})
		}
	}
	sort.Slice(reqs, func(i, j int) bool {
		if reqs[i].req != reqs[j].req {
			return reqs[i].req > reqs[j].req
		}
		return reqs[i].ai < reqs[j].ai
	})
	topN := len(arcs) / 8
	if topN < 8 {
		topN = 8
	}
	allowed := map[int]bool{}
	for i, r := range reqs {
		if i < topN || r.req >= cfg.MinDeltaPS {
			allowed[r.ai] = true
		}
	}
	out := first
	if len(allowed) > 0 && len(allowed) < len(arcs) {
		if second := buildSolve(allowed); second.sol != nil {
			out = second
		}
	}
	sol, vars, stat := out.sol, out.vars, out.stat

	// Realize per arc with closed-loop golden feedback: arcs are processed
	// top-down, the live tree is re-timed incrementally after every change,
	// and each arc's operator (detour trim or Algorithm-1 rebuild) is
	// selected against the arc's *live* delay — so cross-arc couplings
	// (shared-net loading, slew shifts) are compensated instead of
	// accumulating.
	rebuilt := 0
	var selErr float64
	selN := 0
	aLive := a
	for _, ai := range arcs {
		target := make([]float64, K)
		maxAbs := 0.0
		for k := 0; k < K; k++ {
			delta := vars[ai].delta(sol, k)
			target[k] = arcD[ai][k] + delta
			if d := math.Abs(delta); d > maxAbs {
				maxAbs = d
			}
		}
		if maxAbs < 0.5 || directLen[ai] < 5 || external[ai] {
			continue
		}
		arc := seg.Arcs[ai]
		// Live arc delay (anchors persist across earlier realizations).
		live := make([]float64, K)
		for k := 0; k < K; k++ {
			top := aLive.Arrive[k][arc.Top]
			if math.IsNaN(top) {
				top = 0
			}
			live[k] = aLive.Arrive[k][arc.Bottom] - top
		}
		var doNothing float64
		for k := 0; k < K; k++ {
			doNothing += math.Abs(live[k] - target[k])
			for k2 := k + 1; k2 < K; k2++ {
				doNothing += math.Abs((live[k] - live[k2]) - (target[k] - target[k2]))
			}
		}
		bestErr := math.Inf(1)
		var trim *eco.TrimSolution
		var rebuildSol *eco.Solution
		// Added snake is capped by the driving net's capacitance budget so
		// the ECO never creates max-load violations.
		trimCap := 0.0
		if drv := tree.Driver(arc.Bottom); drv != ctree.NoNode {
			k0 := tm.Tech.Nominal
			trimCap = (0.97*tm.Tech.MaxLoad - tm.NetLoad(tree, drv, k0)) / tm.Tech.WireC(k0)
		}
		if trimCap > 0.5 {
			if t, err := reb.SelectTrim(tree, arc, live, target, endLoads[ai], trimCap); err == nil {
				bestErr = t.Err
				trim = t
			}
		} else if t, err := reb.SelectTrim(tree, arc, live, target, endLoads[ai], 0.5); err == nil && t.ExtraUM < 0 {
			// No headroom to add wire, but removal is still available.
			bestErr = t.Err
			trim = t
		}
		if maxAbs >= cfg.MinDeltaPS {
			if s, err := reb.Select(directLen[ai], endLoads[ai], target); err == nil && s.Err < bestErr {
				bestErr = s.Err
				rebuildSol = s
				trim = nil
			}
		}
		if bestErr > 0.8*doNothing {
			continue
		}
		var dirty []ctree.NodeID
		var err error
		pre := tree.Clone()
		aPre := aLive
		switch {
		case rebuildSol != nil:
			dirty, err = reb.RebuildArc(tree, arc, rebuildSol)
		case trim != nil:
			dirty, err = reb.ApplyTrim(tree, arc, trim.ExtraUM)
		default:
			continue
		}
		if err != nil {
			continue
		}
		aLive = tm.AnalyzeIncremental(tree, aLive, dirty)
		// Per-arc golden gate: the realized arc must actually move toward
		// its target (estimates — especially full rebuilds — carry
		// placement/interpolation noise the selection cannot see).
		var errAfter float64
		for k := 0; k < K; k++ {
			top := aLive.Arrive[k][arc.Top]
			if math.IsNaN(top) {
				top = 0
			}
			l := aLive.Arrive[k][arc.Bottom] - top
			errAfter += math.Abs(l - target[k])
			for k2 := k + 1; k2 < K; k2++ {
				top2 := aLive.Arrive[k2][arc.Top]
				if math.IsNaN(top2) {
					top2 = 0
				}
				l2 := aLive.Arrive[k2][arc.Bottom] - top2
				errAfter += math.Abs((l - l2) - (target[k] - target[k2]))
			}
		}
		if errAfter > 0.9*doNothing {
			*tree = *pre
			aLive = aPre
			continue
		}
		rebuilt++
		selErr += bestErr
		selN++
	}
	// Refinement sweeps: first-pass realizations shift sibling arcs (shared
	// nets, slews), and skipped arcs break the LP's coordinated pair
	// balance. Re-trim every arc toward its target from the live state
	// until the residuals stop improving.
	for pass := 0; pass < 2; pass++ {
		changed := 0
		for _, ai := range arcs {
			if external[ai] || directLen[ai] < 5 {
				continue
			}
			arc := seg.Arcs[ai]
			target := make([]float64, K)
			for k := 0; k < K; k++ {
				target[k] = arcD[ai][k] + vars[ai].delta(sol, k)
			}
			live := make([]float64, K)
			for k := 0; k < K; k++ {
				top := aLive.Arrive[k][arc.Top]
				if math.IsNaN(top) {
					top = 0
				}
				live[k] = aLive.Arrive[k][arc.Bottom] - top
			}
			trimCap := 0.0
			if drv := tree.Driver(arc.Bottom); drv != ctree.NoNode {
				k0 := tm.Tech.Nominal
				trimCap = (0.97*tm.Tech.MaxLoad - tm.NetLoad(tree, drv, k0)) / tm.Tech.WireC(k0)
			}
			if trimCap < 0.5 {
				trimCap = 0.5 // still allows snake removal
			}
			t, err := reb.SelectTrim(tree, arc, live, target, endLoads[ai], trimCap)
			if err != nil {
				continue
			}
			dirty, err := reb.ApplyTrim(tree, arc, t.ExtraUM)
			if err != nil {
				continue
			}
			aLive = tm.AnalyzeIncremental(tree, aLive, dirty)
			changed++
		}
		if changed == 0 {
			break
		}
	}
	stat.ArcsChanged = rebuilt
	return stat, rebuilt, selErr, selN, nil
}

func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// rebuildEndLoad mirrors the Rebuilder's bottom-anchor load model, with
// access to the timer for branch taps.
func rebuildEndLoad(tm *sta.Timer, tree *ctree.Tree, bottom ctree.NodeID) float64 {
	n := tree.Node(bottom)
	switch n.Kind {
	case ctree.KindSink:
		return tm.Tech.SinkCap
	case ctree.KindBuffer, ctree.KindSource:
		if c := tm.Tech.CellByName(n.CellName); c != nil {
			return c.InCap
		}
	}
	var load float64
	for _, p := range tree.FanoutPins(bottom) {
		pn := tree.Node(p)
		if pn.Kind == ctree.KindSink {
			load += tm.Tech.SinkCap
		} else if c := tm.Tech.CellByName(pn.CellName); c != nil {
			load += c.InCap
		}
	}
	if load == 0 {
		load = 3
	}
	return load
}

// SetDebugECO toggles verbose ECO tracing (debug builds only).
func SetDebugECO(v bool) { debugECO = v }
