package core

import (
	"context"
	"sync"

	"skewvar/internal/resilience"
)

// runIndexed runs fn(i) for every i in [0, n), bounded by workers. With
// workers <= 1 the calls run inline in index order — the exact serial path,
// no goroutines. Otherwise min(workers, n) goroutines drain an index queue;
// fn must write only state owned by index i. Determinism therefore does not
// depend on scheduling: every fn(i) computes the same value at any worker
// count, and callers reduce over the indexed results in index order.
//
// A canceled context stops new indices from being dispatched; indices
// already started run to completion, and the pool is fully drained before
// return — no goroutine outlives the call.
func runIndexed(ctx context.Context, workers, n int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if resilience.Canceled(ctx) != nil {
				return
			}
			fn(i)
		}
		return
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if resilience.Canceled(ctx) != nil {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
