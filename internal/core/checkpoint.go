package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"skewvar/internal/ctree"
	"skewvar/internal/edaio"
	"skewvar/internal/faults"
	"skewvar/internal/resilience"
)

// CheckpointConfig enables periodic flow checkpointing.
type CheckpointConfig struct {
	Path       string // checkpoint file ("" disables checkpointing)
	EveryIters int    // local iterations between mid-stage saves (default 1)
}

// Checkpoint captures flow progress: which stages have finished (with their
// trees) and, when a local stage was interrupted mid-run, its partial tree
// and completed-iteration count under the "partial" key.
type Checkpoint struct {
	Stage string                 // stage in progress ("" when between stages)
	Iter  int                    // completed local iterations within Stage
	Done  []string               // stages already completed, in run order
	Trees map[string]*ctree.Tree // per-stage trees; "partial" = Stage's tree so far
}

// checkpointFile is the on-disk JSON form. Trees are embedded as edaio
// design documents so a checkpoint survives the same validation as any
// other design input on load.
type checkpointFile struct {
	Version int                        `json:"version"`
	Stage   string                     `json:"stage,omitempty"`
	Iter    int                        `json:"iter,omitempty"`
	Done    []string                   `json:"done,omitempty"`
	Trees   map[string]json.RawMessage `json:"trees"`
}

const checkpointVersion = 1

// SaveCheckpoint atomically writes a checkpoint (tmp file + rename, with
// exponential-backoff retries for transient I/O failures). d supplies the
// design frame (die, pairs, corners) the trees are serialized against. The
// injector's checkpoint-write hook, when armed, fails individual write
// attempts so the retry and degradation paths can be tested
// deterministically.
func SaveCheckpoint(ctx context.Context, path string, d *ctree.Design, cp *Checkpoint, inj *faults.Injector) error {
	cf := checkpointFile{
		Version: checkpointVersion,
		Stage:   cp.Stage,
		Iter:    cp.Iter,
		Done:    cp.Done,
		Trees:   map[string]json.RawMessage{},
	}
	for name, tr := range cp.Trees {
		if tr == nil {
			continue
		}
		var buf bytes.Buffer
		dd := *d
		dd.Tree = tr
		if err := edaio.WriteDesign(&buf, &dd); err != nil {
			return fmt.Errorf("core: serializing checkpoint tree %q: %v: %w", name, err, resilience.ErrCheckpoint)
		}
		cf.Trees[name] = json.RawMessage(buf.Bytes())
	}
	op := func() error {
		if inj.Fire(faults.CheckpointWrite) {
			return fmt.Errorf("core: injected checkpoint write failure")
		}
		return edaio.AtomicWriteFile(path, func(w io.Writer) error {
			return json.NewEncoder(w).Encode(&cf)
		})
	}
	if err := resilience.Retry(ctx, resilience.RetryConfig{}, op); err != nil {
		return fmt.Errorf("core: checkpoint %s: %v: %w", path, err, resilience.ErrCheckpoint)
	}
	return nil
}

// LoadCheckpoint reads and validates a checkpoint written by SaveCheckpoint.
// Every embedded tree passes full edaio design validation; a corrupt or
// torn checkpoint — including one whose decode panics — yields a wrapped
// ErrCheckpoint instead of a flow that resumes from garbage, so callers
// can fall back to a fresh run (skewopt and skewd both do).
func LoadCheckpoint(path string) (cp *Checkpoint, err error) {
	// Decoding runs under Safely: a bit-flipped checkpoint must surface as
	// a typed load error, never as a panic out of the decode path.
	serr := resilience.Safely("checkpoint load", func() error {
		var lerr error
		cp, lerr = loadCheckpoint(path)
		return lerr
	})
	if serr != nil {
		if errors.Is(serr, resilience.ErrCheckpoint) {
			return nil, serr
		}
		return nil, fmt.Errorf("core: decoding checkpoint %s: %v: %w", path, serr, resilience.ErrCheckpoint)
	}
	return cp, nil
}

func loadCheckpoint(path string) (*Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: reading checkpoint: %v: %w", err, resilience.ErrCheckpoint)
	}
	var cf checkpointFile
	if err := json.Unmarshal(b, &cf); err != nil {
		return nil, fmt.Errorf("core: decoding checkpoint %s: %v: %w", path, err, resilience.ErrCheckpoint)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("core: checkpoint %s has version %d, want %d: %w", path, cf.Version, checkpointVersion, resilience.ErrCheckpoint)
	}
	cp := &Checkpoint{Stage: cf.Stage, Iter: cf.Iter, Done: cf.Done, Trees: map[string]*ctree.Tree{}}
	for name, raw := range cf.Trees {
		dd, err := edaio.ReadDesign(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint tree %q: %v: %w", name, err, resilience.ErrCheckpoint)
		}
		cp.Trees[name] = dd.Tree
	}
	return cp, nil
}
