package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"skewvar/internal/ctree"
	"skewvar/internal/eco"
	"skewvar/internal/faults"
	"skewvar/internal/geom"
	"skewvar/internal/legalize"
	"skewvar/internal/obs"
	"skewvar/internal/resilience"
	"skewvar/internal/sta"
)

// LocalConfig tunes the Algorithm-2 iterative optimization. Zero values
// select defaults (R = 5 as in the paper).
type LocalConfig struct {
	Model       StageModel
	R           int     // moves implemented in parallel per batch (default 5)
	MaxIters    int     // iteration cap (default 25)
	MaxBatches  int     // batches tried per iteration before giving up (default 4)
	TopPairs    int     // pairs in the objective (0 = all design pairs)
	CoverPairs  int     // highest-variation pairs whose path buffers are perturbed (default 150)
	MinPredGain float64 // minimum predicted ΣV gain to try a move, ps (default 0.5)
	MaxMoves    int     // enumeration cap per iteration (default 4000)
	Random      bool    // random-move baseline (Figure 8's comparison)
	FullSTA     bool    // force full re-analysis for every golden trial (default: incremental timing)
	Seed        int64

	// Workers bounds the concurrency of candidate-move trials and predictor
	// evaluation, and is installed as the timer's per-corner STA parallelism
	// for the duration of the run (default runtime.GOMAXPROCS(0); 1 = the
	// exact serial path). Results are identical at any setting: trials write
	// to indexed slots and the winner is reduced deterministically by
	// (score, move index), never by completion order.
	Workers int

	// StartIter resumes the iteration count from a checkpoint: the loop
	// runs iterations [StartIter, MaxIters) against the (already partially
	// optimized) input tree.
	StartIter int

	// OnIter, when set, is called after every iteration with the number of
	// completed iterations and the current tree — the flow runner's
	// checkpoint hook. The tree must not be mutated by the callback.
	OnIter func(iter int, tree *ctree.Tree)

	// Faults is an optional deterministic fault injector (nil = none); Rec
	// counts absorbed faults (nil = not recorded). Normally set by RunFlows.
	Faults *faults.Injector
	Rec    *resilience.Recorder

	// Obs, when non-nil, receives the local.opt/local.iter span tree,
	// local.accept events, and the move trial counters (docs/OBSERVABILITY.md).
	// Normally set by RunFlows. Nil keeps instrumentation free.
	Obs *obs.Recorder
}

func (c *LocalConfig) setDefaults() {
	if c.R == 0 {
		c.R = 5
	}
	if c.MaxIters == 0 {
		c.MaxIters = 25
	}
	if c.MaxBatches == 0 {
		c.MaxBatches = 4
	}
	if c.CoverPairs == 0 {
		c.CoverPairs = 150
	}
	if c.MinPredGain == 0 {
		c.MinPredGain = 0.5
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 4000
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// IterRecord logs one accepted iteration for the Figure-8 trajectory.
type IterRecord struct {
	Iter      int
	MoveType  eco.MoveType
	Move      string
	Predicted float64 // predicted ΣV gain, ps
	Actual    float64 // golden ΣV gain, ps
	SumVar    float64 // ΣV after the iteration, ps
}

// LocalResult is the outcome of the local optimization.
type LocalResult struct {
	Tree       *ctree.Tree
	Records    []IterRecord
	SumVar0    float64
	SumVar     float64
	MovesTried int // golden evaluations
	MovesPred  int // predictor evaluations
}

// LocalOpt runs the Algorithm-2 flow on the design: enumerate Table-2
// candidate moves on buffers covering the highest-variation pairs, rank them
// by model-predicted ΣV reduction, implement the top R on clones in
// parallel, verify with the golden timer, accept the best improving and
// non-degrading move, and repeat until the predictor finds no further
// reduction.
//
// A canceled context stops at the next iteration boundary and returns the
// best-so-far tree with a wrapped resilience.ErrCanceled. Moves that fail
// to apply — injected faults, panics in a trial, broken invariants — are
// skipped and counted, never fatal.
func LocalOpt(ctx context.Context, tm *sta.Timer, d *ctree.Design, alphas []float64, cfg LocalConfig) (*LocalResult, error) {
	cfg.setDefaults()
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: LocalOpt needs a stage model: %w", resilience.ErrInvalidDesign)
	}
	if err := validateModel(cfg.Model, tm.Tech.NumCorners()); err != nil {
		return nil, err
	}
	pairs := d.TopPairs(cfg.TopPairs)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("core: no sink pairs: %w", resilience.ErrInvalidDesign)
	}
	lg := legalize.New(d.Die, tm.Tech.SiteW, tm.Tech.RowH)
	tm.Workers = cfg.Workers

	cur := d.Tree.Clone()
	a0 := tm.Analyze(cur)
	res := &LocalResult{SumVar0: sta.SumVariation(a0, alphas, pairs)}
	curVar := res.SumVar0
	// Local-skew guard: never degrade the per-corner local skew.
	skew0 := make([]float64, a0.K)
	for k := range skew0 {
		skew0[k] = sta.MaxAbsSkew(a0, k, pairs)
	}

	pairsBySink := map[ctree.NodeID][]int{}
	for i, p := range pairs {
		pairsBySink[p.A] = append(pairsBySink[p.A], i)
		pairsBySink[p.B] = append(pairsBySink[p.B], i)
	}

	// The span tree (and every counter below) is schedule-independent: the
	// set of iterations, enumerated moves, and accepted moves is identical
	// at any Workers setting, so canonical traces compare across -j.
	var sp *obs.Span
	if cfg.Obs != nil {
		sp = cfg.Obs.StartSpan("local.opt",
			obs.I("start_iter", cfg.StartIter), obs.I("pairs", len(pairs)))
	}
	var runErr error
	for iter := cfg.StartIter; iter < cfg.MaxIters; iter++ {
		if err := resilience.Canceled(ctx); err != nil {
			runErr = err
			break
		}
		var isp *obs.Span
		if sp != nil {
			isp = sp.StartChild("local.iter", obs.I("iter", iter))
		}
		a := tm.Analyze(cur)
		// The rng is derived from (seed, iter), not threaded across
		// iterations, so a resumed run replays the exact move subsets the
		// uninterrupted run would have seen from the same iteration.
		rng := rand.New(rand.NewSource(cfg.Seed + int64(iter)*1000003))
		moves := enumerateCandidates(tm, cur, d, a, alphas, pairs, cfg, rng)
		cfg.Obs.Counter("local.moves.enumerated").Add(int64(len(moves)))
		if len(moves) == 0 {
			isp.End()
			break
		}
		scored := predictGains(ctx, tm, cur, a, alphas, pairs, pairsBySink, moves, cfg, lg)
		res.MovesPred += len(moves)
		cfg.Obs.Counter("local.moves.predicted").Add(int64(len(moves)))
		// A cancellation that landed mid-predict leaves unevaluated slots;
		// don't interpret them as converged — stop here with best-so-far.
		if err := resilience.Canceled(ctx); err != nil {
			runErr = err
			isp.End()
			break
		}
		if cfg.Random {
			rng.Shuffle(len(scored), func(i, j int) { scored[i], scored[j] = scored[j], scored[i] })
		} else {
			sort.SliceStable(scored, func(i, j int) bool { return scored[i].gain > scored[j].gain })
			// Termination per Algorithm 2: stop when the predictor sees no
			// further reduction.
			if scored[0].gain < cfg.MinPredGain {
				isp.End()
				break
			}
		}
		accepted := false
		for batch := 0; batch < cfg.MaxBatches && !accepted; batch++ {
			lo := batch * cfg.R
			if lo >= len(scored) {
				break
			}
			hi := lo + cfg.R
			if hi > len(scored) {
				hi = len(scored)
			}
			cands := scored[lo:hi]
			if !cfg.Random {
				// Don't waste golden runs on predicted-useless moves.
				if cands[0].gain < cfg.MinPredGain {
					break
				}
			}
			type trial struct {
				tree *ctree.Tree
				v    float64
				ok   bool
			}
			trials := make([]trial, len(cands))
			// Fault decisions are pre-drawn serially in move order: the
			// injector's per-hook call counter (and seeded rng) then advances
			// identically at any worker count, so an armed plan replays the
			// same fault sequence whether trials run serial or concurrent.
			// The faults themselves still take effect inside the workers.
			skipMove := make([]bool, len(cands))
			nanDelay := make([]bool, len(cands))
			for i := range cands {
				skipMove[i] = cfg.Faults.Fire(faults.MoveApply)
				nanDelay[i] = cfg.Faults.Fire(faults.NaNDelay)
			}
			runIndexed(ctx, cfg.Workers, len(cands), func(i int) {
				// A move-apply fault (injected I/O-level failure) or a
				// panic inside the trial skips this one move; the rest
				// of the batch still competes.
				if skipMove[i] {
					cfg.Rec.Record("move-apply")
					return
				}
				if err := resilience.Safely("local move trial", func() error {
					// Copy-on-write clone: only the nodes this move mutates
					// are private; the rest are shared, read-only, with the
					// concurrent trials.
					t2 := cur.CloneShared(mutableForMove(cur, cands[i].move)...)
					if err := eco.Apply(t2, tm.Tech, lg, cands[i].move); err != nil {
						return nil
					}
					if t2.Validate() != nil {
						return nil
					}
					var a2 *sta.Analysis
					if cfg.FullSTA {
						a2 = tm.Analyze(t2)
					} else {
						a2 = tm.AnalyzeIncremental(t2, a, moveDirty(cands[i].move))
					}
					v2 := sta.SumVariation(a2, alphas, pairs)
					if nanDelay[i] {
						v2 = math.NaN() // injected timer corruption
					}
					if math.IsNaN(v2) {
						return fmt.Errorf("%w: NaN ΣV evaluating move %s",
							resilience.ErrTimer, cands[i].move)
					}
					for k := 0; k < a2.K; k++ {
						if sta.MaxAbsSkew(a2, k, pairs) > sta.SkewGuard(skew0[k]) {
							return nil // local-skew degradation
						}
					}
					trials[i] = trial{tree: t2, v: v2, ok: true}
					return nil
				}); err != nil {
					if errors.Is(err, resilience.ErrTimer) {
						cfg.Rec.Record("nan-delay")
					} else {
						cfg.Rec.Record("move-panic")
					}
				}
			})
			res.MovesTried += len(cands)
			cfg.Obs.Counter("local.moves.tried").Add(int64(len(cands)))
			// Deterministic reducer: the winner is the minimum of (ΣV, move
			// index) over improving trials — independent of scheduling.
			best := -1
			for i, tr := range trials {
				if tr.ok && tr.v < curVar-1e-6 && (best < 0 || tr.v < trials[best].v) {
					best = i
				}
			}
			if best >= 0 {
				gain := curVar - trials[best].v
				cur = trials[best].tree
				curVar = trials[best].v
				res.Records = append(res.Records, IterRecord{
					Iter:      iter,
					MoveType:  cands[best].move.Type,
					Move:      cands[best].move.String(),
					Predicted: cands[best].gain,
					Actual:    gain,
					SumVar:    curVar,
				})
				accepted = true
				cfg.Obs.Counter("local.moves.accepted").Inc()
				cfg.Obs.Counter("local.moves.rejected").Add(int64(len(cands) - 1))
				if isp != nil {
					isp.Event("local.accept",
						obs.S("move", cands[best].move.String()),
						obs.F("predicted_ps", cands[best].gain),
						obs.F("actual_ps", gain),
						obs.F("sumvar_ps", curVar))
				}
			} else {
				cfg.Obs.Counter("local.moves.rejected").Add(int64(len(cands)))
			}
		}
		if cfg.OnIter != nil {
			cfg.OnIter(iter+1, cur)
		}
		// A batch interrupted by cancellation may have accepted nothing;
		// report the interruption rather than mistaking it for convergence.
		if err := resilience.Canceled(ctx); err != nil {
			runErr = err
			isp.End()
			break
		}
		if !accepted {
			isp.End()
			break
		}
		isp.End()
	}
	sp.End()
	res.Tree = cur
	res.SumVar = curVar
	return res, runErr
}

// enumerateCandidates lists Table-2 moves on buffers that drive the
// highest-variation pairs.
func enumerateCandidates(tm *sta.Timer, cur *ctree.Tree, d *ctree.Design, a *sta.Analysis, alphas []float64, pairs []ctree.SinkPair, cfg LocalConfig, rng *rand.Rand) []eco.Move {
	// Rank pairs by current variation; take path buffers of the top ones.
	type pv struct {
		i int
		v float64
	}
	pvs := make([]pv, len(pairs))
	for i, p := range pairs {
		pvs[i] = pv{i, sta.PairVariation(a, alphas, p)}
	}
	sort.Slice(pvs, func(i, j int) bool { return pvs[i].v > pvs[j].v })
	if len(pvs) > cfg.CoverPairs {
		pvs = pvs[:cfg.CoverPairs]
	}
	bufSet := map[ctree.NodeID]bool{}
	for _, e := range pvs {
		p := pairs[e.i]
		for _, s := range []ctree.NodeID{p.A, p.B} {
			for _, id := range cur.PathToRoot(s) {
				if n := cur.Node(id); n != nil && n.Kind == ctree.KindBuffer {
					bufSet[id] = true
				}
			}
		}
	}
	bufs := make([]ctree.NodeID, 0, len(bufSet))
	for id := range bufSet {
		bufs = append(bufs, id)
	}
	sort.Slice(bufs, func(i, j int) bool { return bufs[i] < bufs[j] })
	var moves []eco.Move
	for _, b := range bufs {
		moves = append(moves, eco.Enumerate(cur, tm.Tech, b, d.Die)...)
	}
	if len(moves) > cfg.MaxMoves {
		rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
		moves = moves[:cfg.MaxMoves]
	}
	return moves
}

type scoredMove struct {
	move eco.Move
	gain float64
}

// MoveScorer predicts the ΣV gain of candidate moves against a fixed
// pre-move tree state. It is safe for concurrent use; pre-move analytic
// stage estimates are cached across calls, since many candidate moves touch
// the same stages.
type MoveScorer struct {
	tm          *sta.Timer
	cur         *ctree.Tree
	a           *sta.Analysis
	alphas      []float64
	pairs       []ctree.SinkPair
	pairsBySink map[ctree.NodeID][]int
	model       StageModel
	lg          *legalize.Legalizer
	skewCap     []float64 // per-corner local-skew ceiling (pre-move max |skew|)

	preMu    sync.Mutex
	preCache map[moveScorerKey][4]float64
}

type moveScorerKey struct {
	d, p ctree.NodeID
	k    int
}

// NewMoveScorer analyzes the tree and prepares a scorer over the pair set.
func NewMoveScorer(tm *sta.Timer, tr *ctree.Tree, die geom.Rect, alphas []float64, pairs []ctree.SinkPair, model StageModel) *MoveScorer {
	pbs := map[ctree.NodeID][]int{}
	for i, p := range pairs {
		pbs[p.A] = append(pbs[p.A], i)
		pbs[p.B] = append(pbs[p.B], i)
	}
	a := tm.Analyze(tr)
	caps := make([]float64, a.K)
	for k := range caps {
		caps[k] = sta.MaxAbsSkew(a, k, pairs)
	}
	return &MoveScorer{
		tm: tm, cur: tr, a: a, alphas: alphas, pairs: pairs,
		pairsBySink: pbs, model: model,
		lg:       legalize.New(die, tm.Tech.SiteW, tm.Tech.RowH),
		skewCap:  caps,
		preCache: map[moveScorerKey][4]float64{},
	}
}

// Analysis exposes the scorer's pre-move golden analysis.
func (s *MoveScorer) Analysis() *sta.Analysis { return s.a }

// preEstimates returns the cached analytic pre-move stage estimates (4
// modes) for the stage "d → p" at corner k. Stages that do not exist
// pre-move (surgery targets) use the golden pre arrival difference for all
// modes, so the estimated delta is measured against the true old path.
func (s *MoveScorer) preEstimates(d, p ctree.NodeID, k int) [4]float64 {
	key := moveScorerKey{d, p, k}
	s.preMu.Lock()
	v, ok := s.preCache[key]
	s.preMu.Unlock()
	if ok {
		return v
	}
	slew := s.a.Slew[k][d]
	if math.IsNaN(slew) {
		slew = sta.DefaultSourceSlew
	}
	exists := false
	for _, pp := range s.cur.FanoutPins(d) {
		if pp == p {
			exists = true
			break
		}
	}
	if exists {
		f := StageFeatures(s.tm.Tech, s.cur, d, p, slew, k)
		copy(v[:], f[:4])
	} else {
		g := GoldenStageDelay(s.a, d, p, k)
		for m := range v {
			v[m] = g
		}
	}
	s.preMu.Lock()
	s.preCache[key] = v
	s.preMu.Unlock()
	return v
}

// predictGains evaluates every candidate move on the worker pool (inline
// when Workers <= 1). Scores land in indexed slots, so the ranking that
// follows is identical at any worker count.
func predictGains(ctx context.Context, tm *sta.Timer, cur *ctree.Tree, a *sta.Analysis, alphas []float64, pairs []ctree.SinkPair, pairsBySink map[ctree.NodeID][]int, moves []eco.Move, cfg LocalConfig, lg *legalize.Legalizer) []scoredMove {
	caps := make([]float64, a.K)
	for k := range caps {
		caps[k] = sta.MaxAbsSkew(a, k, pairs)
	}
	sc := &MoveScorer{
		tm: tm, cur: cur, a: a, alphas: alphas, pairs: pairs,
		pairsBySink: pairsBySink, model: cfg.Model, lg: lg,
		skewCap:  caps,
		preCache: map[moveScorerKey][4]float64{},
	}
	out := make([]scoredMove, len(moves))
	for i := range out {
		out[i] = scoredMove{move: moves[i], gain: math.Inf(-1)}
	}
	runIndexed(ctx, cfg.Workers, len(moves), func(mi int) {
		gain := math.Inf(-1)
		if err := resilience.Safely("predict gain", func() error {
			gain = sc.Gain(moves[mi])
			return nil
		}); err != nil {
			cfg.Rec.Record("predict-panic")
		}
		out[mi].gain = gain
	})
	return out
}

// Gain returns the predicted ΣV gain of a single move: the affected stages
// of the (virtually applied) move are re-estimated with the model, the
// per-sink latency deltas are propagated down the post-move tree, and the
// predicted variation reduction over the touched pairs is summed.
func (s *MoveScorer) Gain(mv eco.Move) float64 {
	tm, cur, a, alphas, pairs, pairsBySink := s.tm, s.cur, s.a, s.alphas, s.pairs, s.pairsBySink
	post := cur.CloneShared(mutableForMove(cur, mv)...)
	if err := eco.Apply(post, tm.Tech, s.lg, mv); err != nil {
		return math.Inf(-1)
	}
	stages := affectedStages(post, mv)
	if len(stages) == 0 {
		return math.Inf(-1)
	}
	K := a.K
	// Per-head per-corner arrival deltas.
	type hd struct {
		head  ctree.NodeID
		delta []float64
	}
	heads := make([]hd, 0, len(stages))
	for _, st := range stages {
		d, p := st[0], st[1]
		delta := make([]float64, K)
		changed := false
		for k := 0; k < K; k++ {
			slew := a.Slew[k][d]
			if math.IsNaN(slew) {
				slew = sta.DefaultSourceSlew
			}
			fPost := StageFeatures(tm.Tech, post, d, p, slew, k)
			pre := s.preEstimates(d, p, k)
			feats := make([]float64, NumFeatures)
			for m := 0; m < 4; m++ {
				feats[m] = fPost[m] - pre[m]
				feats[FeatPostBase+m] = fPost[m]
			}
			copy(feats[FeatFanout:], fPost[4:])
			feats[FeatGoldenPre] = GoldenStageDelay(a, d, p, k)
			delta[k] = s.model.PredictDelta(k, feats)
			if math.Abs(delta[k]) > 1e-3 {
				changed = true
			}
		}
		if changed {
			heads = append(heads, hd{head: p, delta: delta})
		}
	}
	if len(heads) == 0 {
		return 0
	}
	// Propagate to sinks (on the post tree, where surgery re-parenting is
	// already in effect).
	sinkDelta := map[ctree.NodeID][]float64{}
	for _, h := range heads {
		for _, s := range post.SubtreeSinks(h.head) {
			sd := sinkDelta[s]
			if sd == nil {
				sd = make([]float64, K)
				sinkDelta[s] = sd
			}
			for k := 0; k < K; k++ {
				sd[k] += h.delta[k]
			}
		}
	}
	// Surgery also changes the path itself: arrival(child) delta must be
	// measured against the old path, which the head-delta of the new stage
	// (predicted vs golden-pre fallback) already encodes.
	// Touched pairs are summed in ascending pair-index order: float addition
	// is not associative, and a map-order walk here would make the predicted
	// gain drift by an ulp from run to run, breaking the bit-identical
	// worker-count contract.
	seen := map[int]bool{}
	var touched []int
	for sid := range sinkDelta {
		for _, pi := range pairsBySink[sid] {
			if !seen[pi] {
				seen[pi] = true
				touched = append(touched, pi)
			}
		}
	}
	sort.Ints(touched)
	var gain float64
	for _, pi := range touched {
		p := pairs[pi]
		oldV := sta.PairVariation(a, alphas, p)
		newV := 0.0
		dA, dB := sinkDelta[p.A], sinkDelta[p.B]
		for k := 0; k < K; k++ {
			sk := a.Skew(k, p.A, p.B)
			if dA != nil {
				sk += dA[k]
			}
			if dB != nil {
				sk -= dB[k]
			}
			// Predicted local-skew guard: a move whose predicted |skew|
			// pierces the pre-move per-corner ceiling would be rejected
			// by the golden check anyway — filter it here so compliant
			// moves surface in the ranking (the paper's "does not
			// degrade local skew" constraint, applied at prediction
			// time).
			if len(s.skewCap) > k && math.Abs(sk) > sta.SkewGuard(s.skewCap[k]) {
				return math.Inf(-1)
			}
			for k2 := k + 1; k2 < K; k2++ {
				s2 := a.Skew(k2, p.A, p.B)
				if dA != nil {
					s2 += dA[k2]
				}
				if dB != nil {
					s2 -= dB[k2]
				}
				if d := math.Abs(alphas[k]*sk - alphas[k2]*s2); d > newV {
					newV = d
				}
			}
		}
		gain += oldV - newV
	}
	return gain
}

// ActualMoveGain measures the golden-timer ΣV gain of applying one move to
// the tree (positive = improvement). Used as the ground truth when
// evaluating predictors (Figure 6).
func ActualMoveGain(tm *sta.Timer, tr *ctree.Tree, die geom.Rect, alphas []float64, pairs []ctree.SinkPair, mv eco.Move) float64 {
	lg := legalize.New(die, tm.Tech.SiteW, tm.Tech.RowH)
	a0 := tm.Analyze(tr)
	v0 := sta.SumVariation(a0, alphas, pairs)
	t2 := tr.Clone()
	if err := eco.Apply(t2, tm.Tech, lg, mv); err != nil {
		return math.Inf(-1)
	}
	if t2.Validate() != nil {
		return math.Inf(-1)
	}
	a2 := tm.Analyze(t2)
	return v0 - sta.SumVariation(a2, alphas, pairs)
}

// mutableForMove lists the nodes eco.Apply mutates in place for a move, for
// CloneShared: the perturbed buffer (Type I/II Loc and cell), the resized or
// reassigned child, and for surgery the child's structural parent (its
// Children splice) and the new driver (its Children append).
func mutableForMove(tr *ctree.Tree, mv eco.Move) []ctree.NodeID {
	switch mv.Type {
	case eco.TypeII:
		return []ctree.NodeID{mv.Buffer, mv.Child}
	case eco.TypeIII:
		out := []ctree.NodeID{mv.Child, mv.NewDrv}
		if n := tr.Node(mv.Child); n != nil && n.Parent != ctree.NoNode {
			out = append(out, n.Parent)
		}
		return out
	default:
		return []ctree.NodeID{mv.Buffer}
	}
}

// moveDirty lists the nodes whose electrical context a move changes, for
// incremental re-timing.
func moveDirty(mv eco.Move) []ctree.NodeID {
	out := []ctree.NodeID{mv.Buffer}
	if mv.Child != 0 {
		out = append(out, mv.Child)
	}
	if mv.NewDrv != 0 {
		out = append(out, mv.NewDrv)
	}
	return out
}
