package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"skewvar/internal/ctree"
	"skewvar/internal/eco"
	"skewvar/internal/faults"
	"skewvar/internal/legalize"
	"skewvar/internal/resilience"
	"skewvar/internal/route"
	"skewvar/internal/sta"
	"skewvar/internal/tech"
	"skewvar/internal/testgen"
)

// TestRunFlowsWorkerCountEquivalence is the flow-level half of the
// determinism contract: a fixed-seed run must produce identical FlowResult
// metrics and byte-identical checkpoints at every worker count.
func TestRunFlowsWorkerCountEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("worker-count equivalence sweep in short mode")
	}
	sweep := []int{1, 2, runtime.GOMAXPROCS(0)}
	if sweep[2] <= 2 {
		sweep[2] = 4
	}
	type outcome struct {
		alphas                      []float64
		orig, global, local, glocal Metrics
		ckpt                        []byte
	}
	var ref *outcome
	for _, j := range sweep {
		d, tm := smallDesign(t, 100)
		_, ch := testTech(t)
		model := cheapModel(t, tm.Tech)
		ckpt := filepath.Join(t.TempDir(), "eq.ckpt")
		cfg := fastFlowConfig()
		cfg.Workers = j
		cfg.Checkpoint = CheckpointConfig{Path: ckpt, EveryIters: 1}
		res, err := RunFlows(context.Background(), tm, ch, d, model, cfg)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		raw, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatalf("j=%d: reading checkpoint: %v", j, err)
		}
		got := &outcome{res.Alphas, res.Orig, res.Global, res.Local, res.GLocal, raw}
		if ref == nil {
			ref = got
			continue
		}
		if !reflect.DeepEqual(ref.alphas, got.alphas) {
			t.Errorf("j=%d: alphas differ: %v vs %v", j, got.alphas, ref.alphas)
		}
		for name, pair := range map[string][2]Metrics{
			"orig":         {ref.orig, got.orig},
			"global":       {ref.global, got.global},
			"local":        {ref.local, got.local},
			"global-local": {ref.glocal, got.glocal},
		} {
			if !reflect.DeepEqual(pair[0], pair[1]) {
				t.Errorf("j=%d: %s metrics differ:\n serial %+v\n parallel %+v",
					j, name, pair[0], pair[1])
			}
		}
		if !bytes.Equal(ref.ckpt, got.ckpt) {
			t.Errorf("j=%d: checkpoint bytes differ from the serial run (%d vs %d bytes)",
				j, len(got.ckpt), len(ref.ckpt))
		}
	}
}

// TestLocalOptParallelTrialsDeterministic pins the concurrent trial reducer:
// the same seed must pick the same winners — and therefore produce the same
// tree, ΣV trajectory and move counts — at 1 and 8 workers.
func TestLocalOptParallelTrialsDeterministic(t *testing.T) {
	run := func(workers int) *LocalResult {
		d, tm := smallDesign(t, 100)
		model := cheapModel(t, tm.Tech)
		a0 := tm.Analyze(d.Tree)
		pairs := d.TopPairs(0)
		res, err := LocalOpt(context.Background(), tm, d, sta.Alphas(a0, pairs), LocalConfig{
			Model: model, MaxIters: 4, MaxMoves: 400, Seed: 11, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if serial.SumVar != parallel.SumVar || serial.SumVar0 != parallel.SumVar0 {
		t.Errorf("ΣV differs: serial %v/%v, parallel %v/%v",
			serial.SumVar0, serial.SumVar, parallel.SumVar0, parallel.SumVar)
	}
	if serial.MovesTried != parallel.MovesTried || serial.MovesPred != parallel.MovesPred {
		t.Errorf("move counts differ: serial %d/%d, parallel %d/%d",
			serial.MovesTried, serial.MovesPred, parallel.MovesTried, parallel.MovesPred)
	}
	if !reflect.DeepEqual(serial.Records, parallel.Records) {
		t.Errorf("iteration records differ:\n serial %+v\n parallel %+v",
			serial.Records, parallel.Records)
	}
	if serial.Tree.NumNodes() != parallel.Tree.NumNodes() {
		t.Fatal("trees differ in node count")
	}
	for i := range serial.Tree.Nodes {
		a, b := serial.Tree.Nodes[i], parallel.Tree.Nodes[i]
		if (a == nil) != (b == nil) {
			t.Fatalf("node %d liveness differs", i)
		}
		if a == nil {
			continue
		}
		if !a.Loc.Eq(b.Loc) || a.Parent != b.Parent || a.CellName != b.CellName ||
			a.Detour != b.Detour {
			t.Fatalf("node %d differs between worker counts", i)
		}
	}
}

// TestCancelMidParallelIteration cancels a flow while its local stage is
// running concurrent trials: the pool must drain, the flow must stop at the
// iteration boundary with ErrCanceled, and the best-so-far tree must
// survive.
func TestCancelMidParallelIteration(t *testing.T) {
	d, tm := smallDesign(t, 100)
	_, ch := testTech(t)
	model := cheapModel(t, tm.Tech)
	ctx, cancel := context.WithCancel(context.Background())
	cfg := fastFlowConfig()
	cfg.Only = []string{"local"}
	cfg.Workers = 4
	cfg.Local.MaxIters = 10
	cfg.Local.OnIter = func(iter int, _ *ctree.Tree) {
		if iter >= 1 {
			cancel()
		}
	}
	res, err := RunFlows(ctx, tm, ch, d, model, cfg)
	if !errors.Is(err, resilience.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil {
		t.Fatal("canceled flow returned no result")
	}
	if tr := res.Trees["local"]; tr != nil {
		if err := tr.Validate(); err != nil {
			t.Errorf("best-so-far tree invalid: %v", err)
		}
	}
}

// TestFaultInParallelWorker injects trial-level faults while trials run on a
// 4-worker pool: the corruption must surface as a typed, counted fault — a
// NaN objective inside a worker never poisons an acceptance decision — and
// the flow must degrade, not die.
func TestFaultInParallelWorker(t *testing.T) {
	for _, tc := range []struct {
		name string
		hook string
	}{
		{"nan-delay", faults.NaNDelay},
		{"move-apply", faults.MoveApply},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d, tm := smallDesign(t, 100)
			_, ch := testTech(t)
			model := cheapModel(t, tm.Tech)
			cfg := fastFlowConfig()
			cfg.Only = []string{"local"}
			cfg.Workers = 4
			cfg.Faults = faults.New(7).Arm(tc.hook, faults.Spec{First: 3})
			res, err := RunFlows(context.Background(), tm, ch, d, model, cfg)
			if err != nil {
				t.Fatalf("flow aborted: %v", err)
			}
			if !res.Degraded {
				t.Error("Degraded not set")
			}
			if res.Faults[tc.name] == 0 {
				t.Errorf("fault %q not counted: %v", tc.name, res.Faults)
			}
			if res.Local.SumVarPS > res.Orig.SumVarPS+1e-6 {
				t.Errorf("degraded run worse than original: %v > %v",
					res.Local.SumVarPS, res.Orig.SumVarPS)
			}
		})
	}
}

// TestDatasetIncrementalMatchesFull is the regression net under the
// BuildDataset optimization (incremental re-timing per sampled move): the
// incremental dataset must keep the full-analysis sample set and stay within
// the slew-convergence tolerance on every target.
func TestDatasetIncrementalMatchesFull(t *testing.T) {
	th, _ := testTech(t)
	const cases, movesPer, seed = 2, 6, int64(5)
	got, err := BuildDataset(context.Background(), th, cases, movesPer, seed)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	want := fullAnalysisDataset(th, cases, movesPer, seed)
	if len(got.X) != len(want.X) {
		t.Fatalf("corner counts differ: %d vs %d", len(got.X), len(want.X))
	}
	for k := range want.X {
		if len(got.Y[k]) != len(want.Y[k]) {
			t.Fatalf("corner %d: sample counts differ: %d vs %d (incremental changed the filter)",
				k, len(got.Y[k]), len(want.Y[k]))
		}
		for i := range want.Y[k] {
			if !reflect.DeepEqual(got.X[k][i], want.X[k][i]) {
				t.Fatalf("corner %d sample %d: features differ (features must not depend on the timing backend)", k, i)
			}
			if got.Base[k][i] != want.Base[k][i] {
				t.Fatalf("corner %d sample %d: base %v vs %v", k, i, got.Base[k][i], want.Base[k][i])
			}
			if d := math.Abs(got.Y[k][i] - want.Y[k][i]); d > 0.1 {
				t.Fatalf("corner %d sample %d: target drifted %.4f ps (incremental %v, full %v)",
					k, i, d, got.Y[k][i], want.Y[k][i])
			}
		}
	}
}

// fullAnalysisDataset replays BuildDataset's exact sampling (same rng
// consumption order) with a full golden analysis per move — the reference
// the incremental path is pinned against.
func fullAnalysisDataset(th *tech.Tech, cases, movesPer int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	k := th.NumCorners()
	ds := &Dataset{
		X:    make([][][]float64, k),
		Y:    make([][]float64, k),
		Base: make([][]float64, k),
	}
	for c := 0; c < cases; c++ {
		tc := testgen.NewTrainingCase(th, rng)
		tm := sta.New(th)
		tm.Cong = route.NewCongestion(tc.Die, 8, 8, 0.18, uint64(seed)+uint64(c)*7919)
		lg := legalize.New(tc.Die, th.SiteW, th.RowH)
		preA := tm.Analyze(tc.Tree)
		moves := eco.Enumerate(tc.Tree, th, tc.Target, tc.Die)
		rng.Shuffle(len(moves), func(i, j int) { moves[i], moves[j] = moves[j], moves[i] })
		if len(moves) > movesPer {
			moves = moves[:movesPer]
		}
		for _, mv := range moves {
			post := tc.Tree.Clone()
			if err := eco.Apply(post, th, lg, mv); err != nil {
				continue
			}
			postA := tm.Analyze(post)
			for _, st := range affectedStages(post, mv) {
				d, pin := st[0], st[1]
				for kk := 0; kk < k; kk++ {
					feats := DeltaFeatures(th, tc.Tree, post, preA, d, pin, kk)
					base := GoldenStageDelay(preA, d, pin, kk)
					target := GoldenStageDelta(preA, postA, d, pin, kk)
					if math.IsNaN(target) || math.IsNaN(base) || base <= 0 {
						continue
					}
					ds.X[kk] = append(ds.X[kk], feats)
					ds.Y[kk] = append(ds.Y[kk], target)
					ds.Base[kk] = append(ds.Base[kk], base)
				}
			}
		}
	}
	return ds
}
