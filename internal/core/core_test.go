package core

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"skewvar/internal/ctree"
	"skewvar/internal/eco"
	"skewvar/internal/fit"
	"skewvar/internal/geom"
	"skewvar/internal/lut"
	"skewvar/internal/sta"
	"skewvar/internal/tech"
	"skewvar/internal/testgen"
)

var (
	cachedTech *tech.Tech
	cachedChar *lut.Char
)

func testTech(t *testing.T) (*tech.Tech, *lut.Char) {
	t.Helper()
	if cachedTech == nil {
		cachedTech = tech.Default28nm()
		cachedChar = lut.Characterize(cachedTech)
	}
	return cachedTech, cachedChar
}

func smallDesign(t *testing.T, nFF int) (*ctree.Design, *sta.Timer) {
	t.Helper()
	base, _ := testTech(t)
	d, tm, err := testgen.Build(base, testgen.CLS1v1(nFF))
	if err != nil {
		t.Fatal(err)
	}
	return d, tm
}

func cheapModel(t *testing.T, th *tech.Tech) *MLStageModel {
	t.Helper()
	m, err := TrainStageModel(context.Background(), th, TrainConfig{
		Cases: 8, MovesPerCase: 8, Kind: "ridge", Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEstModeStrings(t *testing.T) {
	for m := EstMode(0); m < NumEstModes; m++ {
		if m.String() == "" || m.String() == "EstMode(?)" {
			t.Errorf("mode %d has no name", m)
		}
	}
	if EstMode(99).String() != "EstMode(?)" {
		t.Error("unknown mode string")
	}
}

func TestStageFeaturesShape(t *testing.T) {
	th, _ := testTech(t)
	tr := ctree.NewTree(geom.Pt(0, 0), "CKINVX16")
	b := tr.AddNode(ctree.KindBuffer, geom.Pt(100, 100), "CKINVX4", tr.Source)
	var sinks []ctree.NodeID
	for i := 0; i < 5; i++ {
		s := tr.AddNode(ctree.KindSink, geom.Pt(150+float64(10*i), 80+float64(15*i)), "", b.ID)
		sinks = append(sinks, s.ID)
	}
	feats := StageFeatures(th, tr, b.ID, sinks[2], 40, 0)
	if len(feats) != numStageFeatures {
		t.Fatalf("features = %d", len(feats))
	}
	for m := 0; m < 4; m++ {
		if feats[m] <= 0 {
			t.Errorf("estimate %d = %v", m, feats[m])
		}
	}
	if feats[4] != 5 {
		t.Errorf("fanout = %v", feats[4])
	}
	if feats[5] <= 0 || feats[6] <= 0 || feats[6] > 1 {
		t.Errorf("bbox area/AR = %v/%v", feats[5], feats[6])
	}
	// Elmore upper-bounds D2M for the same topology.
	if feats[RSMTD2M] > feats[RSMTElmore]+1e-9 {
		t.Error("RSMT D2M exceeds Elmore")
	}
	if feats[TrunkD2M] > feats[TrunkElmore]+1e-9 {
		t.Error("Trunk D2M exceeds Elmore")
	}
	// Missing pin → zero features, no panic.
	z := StageFeatures(th, tr, b.ID, ctree.NodeID(999), 40, 0)
	for _, v := range z {
		if v != 0 {
			t.Error("missing pin produced features")
		}
	}
}

func TestStageFeaturesTrackGolden(t *testing.T) {
	// The analytic estimates should correlate strongly with golden stage
	// delays across random training nets.
	th, _ := testTech(t)
	rng := rand.New(rand.NewSource(21))
	tm := sta.New(th)
	var est, golden []float64
	for i := 0; i < 15; i++ {
		tc := testgen.NewTrainingCase(th, rng)
		a := tm.Analyze(tc.Tree)
		d := tc.Target
		for _, pin := range tc.Tree.FanoutPins(d) {
			slew := a.Slew[0][d]
			f := StageFeatures(th, tc.Tree, d, pin, slew, 0)
			est = append(est, f[RSMTD2M])
			golden = append(golden, GoldenStageDelay(a, d, pin, 0))
		}
	}
	if r := fit.Pearson(est, golden); r < 0.9 {
		t.Errorf("estimate/golden correlation = %v", r)
	}
}

func TestAffectedStagesPerMoveType(t *testing.T) {
	th, _ := testTech(t)
	tr := ctree.NewTree(geom.Pt(0, 0), "CKINVX16")
	top := tr.AddNode(ctree.KindBuffer, geom.Pt(100, 100), "CKINVX8", tr.Source)
	b1 := tr.AddNode(ctree.KindBuffer, geom.Pt(200, 110), "CKINVX4", top.ID)
	b2 := tr.AddNode(ctree.KindBuffer, geom.Pt(200, 90), "CKINVX4", top.ID)
	s1 := tr.AddNode(ctree.KindSink, geom.Pt(220, 110), "", b1.ID)
	tr.AddNode(ctree.KindSink, geom.Pt(220, 90), "", b2.ID)
	_ = th

	stI := affectedStages(tr, eco.Move{Type: eco.TypeI, Buffer: b1.ID})
	// top's net (2 pins) + b1's net (1 pin).
	if len(stI) != 3 {
		t.Errorf("Type I stages = %v", stI)
	}
	stII := affectedStages(tr, eco.Move{Type: eco.TypeII, Buffer: top.ID, Child: b1.ID})
	// source net (1 pin: top) + top net (2) + b1 net (1).
	if len(stII) != 4 {
		t.Errorf("Type II stages = %v", stII)
	}
	// Surgery: move s1 to b2, then inspect post-tree stages.
	post := tr.Clone()
	if err := post.ReassignParent(s1.ID, b2.ID); err != nil {
		t.Fatal(err)
	}
	stIII := affectedStages(post, eco.Move{Type: eco.TypeIII, Buffer: b1.ID, Child: s1.ID, NewDrv: b2.ID})
	// b1's net (now 0 pins) + b2's net (2 pins).
	if len(stIII) != 2 {
		t.Errorf("Type III stages = %v", stIII)
	}
}

func TestBuildDatasetAndModelBeatsAnalytic(t *testing.T) {
	th, _ := testTech(t)
	ds, err := BuildDataset(context.Background(), th, 10, 10, 31)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	if ds.Len() < 100 {
		t.Fatalf("dataset too small: %d", ds.Len())
	}
	if len(ds.X) != th.NumCorners() {
		t.Fatalf("corners = %d", len(ds.X))
	}
	model, err := TrainOnDataset(context.Background(), th, ds, TrainConfig{Kind: "ridge", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Held-out evaluation: the trained model must beat every raw analytic
	// estimator (the paper's Figure 5/6 claim).
	hold, err := BuildDataset(context.Background(), th, 4, 8, 99)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	accs := EvaluateStageModel(model, hold)
	for k, acc := range accs {
		mlErr := fit.RMSE(acc.Predicted, acc.Actual)
		for m := EstMode(0); m < NumEstModes; m++ {
			base := EvaluateStageModel(&AnalyticStageModel{Mode: m}, hold)[k]
			aErr := fit.RMSE(base.Predicted, base.Actual)
			if mlErr > aErr {
				t.Errorf("corner %d: ML RMSE %v worse than %v RMSE %v", k, mlErr, m, aErr)
			}
		}
	}
}

func TestTrainErrors(t *testing.T) {
	th, _ := testTech(t)
	if _, err := TrainOnDataset(context.Background(), th, &Dataset{}, TrainConfig{Kind: "ridge"}); err == nil {
		t.Error("empty dataset accepted")
	}
	ds, err := BuildDataset(context.Background(), th, 2, 3, 1)
	if err != nil {
		t.Fatalf("BuildDataset: %v", err)
	}
	if _, err := TrainOnDataset(context.Background(), th, ds, TrainConfig{Kind: "nope"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestLocalOptImproves(t *testing.T) {
	d, tm := smallDesign(t, 150)
	model := cheapModel(t, tm.Tech)
	a0 := tm.Analyze(d.Tree)
	pairs := d.TopPairs(0)
	alphas := sta.Alphas(a0, pairs)
	res, err := LocalOpt(context.Background(), tm, d, alphas, LocalConfig{
		Model: model, MaxIters: 6, MaxMoves: 800, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SumVar > res.SumVar0 {
		t.Errorf("local opt worsened ΣV: %v → %v", res.SumVar0, res.SumVar)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Local skew must not degrade (checked against the analysis).
	aN := tm.Analyze(res.Tree)
	for k := 0; k < aN.K; k++ {
		if sta.MaxAbsSkew(aN, k, pairs) > sta.SkewGuard(sta.MaxAbsSkew(a0, k, pairs)) {
			t.Errorf("corner %d local skew degraded", k)
		}
	}
	// Records are consistent: strictly decreasing ΣV.
	last := res.SumVar0
	for _, r := range res.Records {
		if r.SumVar >= last {
			t.Errorf("iteration %d did not reduce ΣV", r.Iter)
		}
		last = r.SumVar
	}
	if res.MovesPred == 0 {
		t.Error("no moves predicted")
	}
}

func TestLocalOptErrors(t *testing.T) {
	d, tm := smallDesign(t, 150)
	if _, err := LocalOpt(context.Background(), tm, d, []float64{1, 1, 1}, LocalConfig{}); err == nil {
		t.Error("missing model accepted")
	}
	bad := &MLStageModel{Kind: "x"}
	if _, err := LocalOpt(context.Background(), tm, d, []float64{1, 1, 1}, LocalConfig{Model: bad}); err == nil {
		t.Error("under-provisioned model accepted")
	}
}

func TestGlobalOptImproves(t *testing.T) {
	d, tm := smallDesign(t, 150)
	_, ch := testTech(t)
	a0 := tm.Analyze(d.Tree)
	pairs := d.TopPairs(0)
	alphas := sta.Alphas(a0, pairs)
	res, err := GlobalOpt(context.Background(), tm, ch, d, alphas, GlobalConfig{
		TopPairs: 120, MaxPairsPerLP: 40, MaxArcsPerLP: 90,
		USweep: []float64{0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if res.SumVar > res.SumVar0+1e-9 {
		t.Errorf("global opt worsened ΣV: %v → %v", res.SumVar0, res.SumVar)
	}
	if len(res.LPStats) == 0 {
		t.Error("no LP stats recorded")
	}
	// No design-rule violations introduced (paper footnote 8).
	cv, sv := tm.Violations(res.Tree)
	if cv != 0 || sv != 0 {
		t.Errorf("violations after global opt: cap=%d slew=%d", cv, sv)
	}
}

func TestSnapshotAndRunFlows(t *testing.T) {
	if testing.Short() {
		t.Skip("full flow in short mode")
	}
	d, tm := smallDesign(t, 120)
	_, ch := testTech(t)
	model := cheapModel(t, tm.Tech)
	res, err := RunFlows(context.Background(), tm, ch, d, model, FlowConfig{
		TopPairs: 150,
		Global: GlobalConfig{
			MaxPairsPerLP: 40, MaxArcsPerLP: 80, USweep: []float64{0.8},
		},
		Local: LocalConfig{MaxIters: 4, MaxMoves: 600, Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Orig.Norm != 1 {
		t.Error("orig norm != 1")
	}
	// Paper-shape assertions: every flow ≤ original; global-local is the
	// best flow overall (allowing a whisker of tolerance).
	if res.Global.SumVarPS > res.Orig.SumVarPS+1e-6 {
		t.Error("global worse than orig")
	}
	if res.Local.SumVarPS > res.Orig.SumVarPS+1e-6 {
		t.Error("local worse than orig")
	}
	if res.GLocal.SumVarPS > res.Global.SumVarPS+1e-6 {
		t.Error("global-local worse than global alone")
	}
	// Power/area overhead must be small (paper: negligible).
	if res.GLocal.PowerMW > res.Orig.PowerMW*1.15 {
		t.Errorf("power overhead too large: %v → %v", res.Orig.PowerMW, res.GLocal.PowerMW)
	}
	for k, s := range res.GLocal.SkewPS {
		if s > sta.SkewGuard(res.Orig.SkewPS[k]) {
			t.Errorf("corner %d local skew degraded: %v → %v", k, res.Orig.SkewPS[k], s)
		}
	}
}

func TestAnalyticBaselines(t *testing.T) {
	bs := AnalyticBaselines()
	if len(bs) != int(NumEstModes) {
		t.Fatalf("baselines = %d", len(bs))
	}
	feats := make([]float64, NumFeatures)
	feats[FeatPostBase+int(TrunkD2M)] = 142
	feats[FeatGoldenPre] = 100
	if v := bs[TrunkD2M].PredictDelta(0, feats); v != 42 {
		t.Errorf("analytic (absolute) predict = %v", v)
	}
	feats[TrunkD2M] = 37
	db := DeltaBaselines()
	if v := db[TrunkD2M].PredictDelta(0, feats); v != 37 {
		t.Errorf("analytic (delta) predict = %v", v)
	}
	if db[0].Name() == bs[0].Name() {
		t.Error("baseline names collide")
	}
	if bs[0].Name() == "" {
		t.Error("baseline name empty")
	}
	m := math.NaN()
	_ = m
}

func TestLocalOptIncrementalMatchesFullSTA(t *testing.T) {
	d, tm := smallDesign(t, 150)
	model := cheapModel(t, tm.Tech)
	a0 := tm.Analyze(d.Tree)
	pairs := d.TopPairs(0)
	alphas := sta.Alphas(a0, pairs)
	run := func(full bool) *LocalResult {
		res, err := LocalOpt(context.Background(), tm, d, alphas, LocalConfig{
			Model: model, MaxIters: 5, MaxMoves: 600, Seed: 5, FullSTA: full,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inc := run(false)
	full := run(true)
	// The incremental timer is equivalent within slew-convergence tolerance;
	// accepted-move sequences may differ on exact ties, but the outcomes
	// must agree closely.
	if math.Abs(inc.SumVar-full.SumVar) > 0.02*full.SumVar0 {
		t.Errorf("incremental %.1f vs full %.1f (ΣV0 %.1f)", inc.SumVar, full.SumVar, full.SumVar0)
	}
}

func TestRunFlowsErrors(t *testing.T) {
	d, tm := smallDesign(t, 150)
	_, ch := testTech(t)
	model := cheapModel(t, tm.Tech)
	empty := d.Clone()
	empty.Pairs = nil
	if _, err := RunFlows(context.Background(), tm, ch, empty, model, FlowConfig{}); err == nil {
		t.Error("empty pair set accepted")
	}
}

func TestGlobalOptErrors(t *testing.T) {
	d, tm := smallDesign(t, 150)
	_, ch := testTech(t)
	empty := d.Clone()
	empty.Pairs = nil
	if _, err := GlobalOpt(context.Background(), tm, ch, empty, []float64{1, 1, 1}, GlobalConfig{}); err == nil {
		t.Error("empty pair set accepted")
	}
}

func TestSnapshotMetrics(t *testing.T) {
	d, tm := smallDesign(t, 150)
	pairs := d.TopPairs(0)
	a := tm.Analyze(d.Tree)
	al := sta.Alphas(a, pairs)
	m := Snapshot(tm, d.Tree, pairs, al)
	if m.SumVarPS <= 0 || m.NumCells <= 0 || m.PowerMW <= 0 || m.AreaUM2 <= 0 {
		t.Errorf("snapshot = %+v", m)
	}
	if len(m.SkewPS) != tm.Tech.NumCorners() {
		t.Errorf("skew corners = %d", len(m.SkewPS))
	}
}

func TestStageModelPersistRoundTrip(t *testing.T) {
	th, _ := testTech(t)
	m := cheapModel(t, th)
	var buf bytes.Buffer
	if err := SaveStageModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadStageModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Kind != m.Kind || len(m2.Models) != len(m.Models) || len(m2.Shrink) != len(m.Shrink) {
		t.Fatalf("round trip mismatch: %+v", m2)
	}
	feats := make([]float64, NumFeatures)
	feats[RSMTD2M] = 12
	feats[FeatSlew] = 40
	for k := range m.Models {
		if m.PredictDelta(k, feats) != m2.PredictDelta(k, feats) {
			t.Fatal("predictions differ after round trip")
		}
	}
	// Errors.
	if _, err := LoadStageModel(strings.NewReader("junk")); err == nil {
		t.Error("junk accepted")
	}
	if _, err := LoadStageModel(strings.NewReader(`{"kind":"x","bundle":{"kind":"ridge","models":[]}}`)); err == nil {
		t.Error("kind mismatch/empty accepted")
	}
}
