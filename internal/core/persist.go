package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"skewvar/internal/ml"
	"skewvar/internal/resilience"
)

// stageModelFile is the on-disk form of a trained MLStageModel.
type stageModelFile struct {
	Kind   string          `json:"kind"`
	Shrink []float64       `json:"shrink"`
	Bundle json.RawMessage `json:"bundle"`
}

// SaveStageModel writes the trained per-corner predictors (with their
// correction shrink factors) as JSON.
func SaveStageModel(w io.Writer, m *MLStageModel) error {
	var buf bytes.Buffer
	if err := ml.SaveModels(&buf, m.Kind, m.Models); err != nil {
		return err
	}
	f := stageModelFile{Kind: m.Kind, Shrink: m.Shrink, Bundle: buf.Bytes()}
	return json.NewEncoder(w).Encode(&f)
}

// LoadStageModel reads a model written by SaveStageModel.
func LoadStageModel(r io.Reader) (*MLStageModel, error) {
	var f stageModelFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("core: decoding stage model: %w", err)
	}
	kind, models, err := ml.LoadModels(bytes.NewReader(f.Bundle))
	if err != nil {
		return nil, err
	}
	if kind != f.Kind {
		return nil, fmt.Errorf("core: bundle kind %q does not match header %q: %w", kind, f.Kind, resilience.ErrInvalidDesign)
	}
	if len(models) == 0 {
		return nil, fmt.Errorf("core: model file has no per-corner models: %w", resilience.ErrInvalidDesign)
	}
	return &MLStageModel{Kind: f.Kind, Models: models, Shrink: f.Shrink}, nil
}
