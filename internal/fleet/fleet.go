// Package fleet scales skewd out to a multi-replica cluster behind one
// coordinator: jobs are sharded across N skewd-style replicas by
// consistent hashing on the job id, replica failure is detected by
// heartbeats and repaired by journal-based work stealing, and repeated
// dispatch failures quarantine a replica behind a circuit breaker until a
// probe succeeds.
//
// The whole cluster runs in one process ("cluster in one binary",
// cmd/skewfleet): replicas are serve.Server instances on private spool
// directories, and the coordinator talks to them through a Transport
// interface whose in-process implementation injects faults
// deterministically (faults.RPCDrop, faults.HeartbeatDelay,
// faults.ReplicaCrash), so replica kills, dropped RPCs, delayed
// heartbeats, and partitions all replay by seed.
//
// The failure/repair contract (docs/ROBUSTNESS.md):
//
//   - Shard ownership: a job's home replica is the first live replica at
//     or after hash(job id) on a virtual-node hash ring. Dead and
//     quarantined replicas are skipped, so ownership degrades
//     deterministically as the fleet shrinks.
//   - Failure detection: the coordinator's monitor pings every replica
//     each tick; MissThreshold consecutive failed pings declare it dead.
//   - Fencing, then stealing: a dead replica is fenced (its in-process
//     server is crash-stopped) before its journal is touched — a
//     false-positive detection can therefore never double-run a job. A
//     surviving peer then replays the fenced journal: terminal jobs are
//     adopted (artifacts copied, outcome re-journaled), non-terminal jobs
//     are re-admitted idempotently under their original ids and resume
//     from their flow checkpoints. Steal records appended to the victim's
//     journal make the theft durable and repeatable: a journal a peer
//     already partially stole replays without duplicating a single job.
//   - Quarantine: dispatch failures feed a per-replica circuit breaker
//     (resilience.Breaker). An open breaker takes the replica off the
//     ring; a successful half-open probe (piggybacked on the heartbeat)
//     re-admits it.
//   - Metrics: /metrics serves the associative obs.Merge fold of the
//     coordinator's and every live replica's snapshot — counters and
//     histograms add per-replica, CRDT-counter style.
package fleet

import (
	"fmt"
	"time"

	"skewvar/internal/core"
	"skewvar/internal/faults"
	"skewvar/internal/lut"
	"skewvar/internal/obs"
	"skewvar/internal/tech"
)

// Config tunes a Cluster. Zero values select the documented defaults;
// SpoolDir, Tech, Char, and Model are required.
type Config struct {
	// SpoolDir is the fleet root; replica i keeps its journal and job
	// artifacts in SpoolDir/r<i>.
	SpoolDir string

	Replicas     int           // replica count (default 3)
	Workers      int           // worker pool size per replica (default 2)
	QueueDepth   int           // queued-job bound per replica (default 8)
	JobTimeout   time.Duration // per-job deadline ceiling (default 10m)
	DrainTimeout time.Duration // per-replica drain budget (default 30s)

	// JournalBatch and JournalWindow tune every replica journal's group
	// commit (see serve.Config: the defaults — 1, 0 — are fsync per line,
	// and the admitted-before-ack durability contract is unchanged at any
	// setting, so journal steals see the same admitted-job set).
	JournalBatch  int
	JournalWindow time.Duration

	// CompactEvery is each replica journal's compaction threshold (see
	// serve.Config.CompactEvery; 0 = the serve default, negative
	// disables). Steals keep working against a compacted victim: the
	// snapshot is the fold base its steal records apply over.
	CompactEvery int

	// HeartbeatEvery is the monitor tick period (default 25ms). Every
	// tick pings each replica and advances quarantine cooldowns, so the
	// breaker's call-counted cooldown behaves like a time window.
	HeartbeatEvery time.Duration

	// MissThreshold is how many consecutive failed pings declare a
	// replica dead (default 3).
	MissThreshold int

	// BreakerThreshold / BreakerCooldown tune the per-replica dispatch
	// circuit breakers (defaults 3 and 8; see resilience.BreakerConfig).
	BreakerThreshold int
	BreakerCooldown  int

	Tech  *tech.Tech      // base technology, shared read-only by all replicas
	Char  *lut.Char       // characterized LUTs, shared read-only
	Model core.StageModel // stage model, shared read-only

	// Faults drives the fleet-level injection points rpc-drop,
	// heartbeat-delay, and replica-crash (nil = no injection). Replicas
	// get no injector of their own: fleet chaos is modeled at the
	// coordinator/transport boundary so a (seed, spec) pair replays the
	// same failure sequence regardless of replica goroutine scheduling.
	Faults *faults.Injector

	// Obs receives coordinator-level counters and gauges; /metrics merges
	// it with every live replica's snapshot. Nil disables coordinator
	// instrumentation (replica snapshots are still aggregated).
	Obs *obs.Recorder

	// Seed seeds the breakers' probe jitter and each replica's journal
	// retry jitter (default 1).
	Seed int64

	Logf func(format string, args ...interface{}) // nil = silent
}

func (c *Config) setDefaults() error {
	if c.SpoolDir == "" {
		return fmt.Errorf("fleet: Config.SpoolDir is required")
	}
	if c.Tech == nil || c.Char == nil || c.Model == nil {
		return fmt.Errorf("fleet: Config.Tech, Char, and Model are required")
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 10 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 25 * time.Millisecond
	}
	if c.MissThreshold <= 0 {
		c.MissThreshold = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return nil
}
