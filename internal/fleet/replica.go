package fleet

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"skewvar/internal/obs"
	"skewvar/internal/resilience"
	"skewvar/internal/serve"
)

// replica is one member of the in-process cluster: a serve.Server on a
// private spool directory, running workers but no HTTP listener, plus
// the coordinator's health bookkeeping for it. All mutable fields are
// guarded by the Cluster's mutex.
type replica struct {
	name  string // "r0", "r1", ... — also the spool subdirectory name
	spool string

	srv *serve.Server // nil while dead (crashed and not yet restarted)

	breaker *resilience.Breaker // quarantine on dispatch failures

	misses      int  // consecutive failed heartbeats
	dead        bool // declared dead by the monitor (or crashed by admin)
	fencing     bool // crash-stop in progress; journal NOT yet safe
	fenced      bool // crash-stopped; journal safe to steal from
	stolen      bool // journal already harvested by a peer
	incarnation int  // bumped on every (re)start, for logs and /replicas
}

// spoolFor returns the spool directory of the named replica under the
// fleet root.
func spoolFor(root, name string) string { return filepath.Join(root, name) }

// startReplica builds (or rebuilds, after a crash/restart) the replica's
// serve.Server on its spool and launches its worker pool. The journal in
// the spool replays first, exactly as a restarted skewd process would.
func (c *Cluster) startReplica(r *replica) error {
	if err := os.MkdirAll(r.spool, 0o755); err != nil {
		return fmt.Errorf("fleet: replica %s spool: %w", r.name, err)
	}
	name := r.name
	srv, err := serve.New(serve.Config{
		SpoolDir:      r.spool,
		Workers:       c.cfg.Workers,
		QueueDepth:    c.cfg.QueueDepth,
		JobTimeout:    c.cfg.JobTimeout,
		DrainTimeout:  c.cfg.DrainTimeout,
		JournalBatch:  c.cfg.JournalBatch,
		JournalWindow: c.cfg.JournalWindow,
		CompactEvery:  c.cfg.CompactEvery,
		Tech:          c.cfg.Tech,
		Char:          c.cfg.Char,
		Model:         c.cfg.Model,
		Obs:           obs.New(),
		RetrySeed:     c.cfg.Seed,
		Logf: func(format string, args ...interface{}) {
			c.cfg.Logf(name+": "+format, args...)
		},
	})
	if err != nil {
		return fmt.Errorf("fleet: replica %s: %w", r.name, err)
	}
	srv.StartWorkers()
	r.srv = srv
	r.dead = false
	r.fenced = false
	r.stolen = false
	r.misses = 0
	r.incarnation++
	return nil
}

// fence crash-stops the replica's server in place. Idempotent; after it
// returns the spool is quiescent — no worker or journal write of the old
// incarnation can land — so a peer may read and mark its journal. This
// is the in-process analogue of STONITH: the coordinator never steals
// from a journal whose owner might still be appending.
func (r *replica) fence() {
	if r.srv != nil {
		r.srv.Crash()
		r.srv = nil
	}
	r.fenced = true
}

// copyArtifact copies one per-job spool artifact (ckpt, out.json,
// trace.jsonl, metrics.json) from a victim's spool to a thief's,
// skipping silently when the source does not exist (e.g. a job that
// crashed before its first checkpoint).
func copyArtifact(fromSpool, toSpool, id, suffix string) error {
	src := serve.SpoolArtifact(fromSpool, id, suffix)
	in, err := os.Open(src)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	defer in.Close()
	dst := serve.SpoolArtifact(toSpool, id, suffix)
	tmp := dst + ".steal"
	out, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(tmp)
		return err
	}
	if err := out.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Rename-into-place so a crash mid-copy never leaves a torn artifact
	// under the real name (a torn checkpoint would poison the resume).
	return os.Rename(tmp, dst)
}
