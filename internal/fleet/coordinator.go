package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"

	"skewvar/internal/obs"
	"skewvar/internal/resilience"
	"skewvar/internal/serve"
)

// Cluster is the coordinator plus its in-process replicas: the whole
// fleet in one object. Construct with New, submit with Submit, stop
// with Drain.
type Cluster struct {
	cfg  Config
	ring *ring
	tr   Transport

	mu       sync.Mutex
	replicas map[string]*replica
	names    []string          // fixed replica order r0..r{N-1}
	assign   map[string]string // job id → owning replica name
	submits  int               // fleet-wide job id counter

	monCtx    context.Context
	monCancel context.CancelFunc
	monDone   chan struct{}

	httpSrv   *http.Server
	acceptErr chan error

	draining bool
}

// ErrNoReplica reports a submission that found no admissible replica:
// every candidate was dead, quarantined, or at its queue bound.
var ErrNoReplica = errors.New("fleet: no replica available")

// ErrNoSuchReplica reports an admin operation naming a replica the
// cluster has never heard of (the HTTP layer maps it to 404).
var ErrNoSuchReplica = errors.New("fleet: no such replica")

// ErrReplicaState reports an admin operation that found the replica in
// the wrong state for it — restarting one that is already running, or
// one still being fenced. Retryable once the state settles (409).
var ErrReplicaState = errors.New("fleet: replica in wrong state")

// New builds the cluster: replicas start on their spools (replaying any
// journals already there, exactly like restarted skewd processes), the
// coordinator rebuilds its assignment table from those journals —
// completing any steal a previous incarnation left half-done — and the
// heartbeat monitor starts.
func New(cfg Config) (*Cluster, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.SpoolDir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: spool dir: %w", err)
	}
	c := &Cluster{
		cfg:      cfg,
		replicas: make(map[string]*replica),
		assign:   make(map[string]string),
	}
	c.tr = &localTransport{c: c}
	for i := 0; i < cfg.Replicas; i++ {
		name := fmt.Sprintf("r%d", i)
		c.names = append(c.names, name)
		c.replicas[name] = &replica{
			name:  name,
			spool: spoolFor(cfg.SpoolDir, name),
			breaker: resilience.NewBreaker(resilience.BreakerConfig{
				Threshold: cfg.BreakerThreshold,
				Cooldown:  cfg.BreakerCooldown,
				Rand:      rand.New(rand.NewSource(cfg.Seed + int64(i))),
			}),
		}
	}
	c.ring = newRing(c.names)
	for _, name := range c.names {
		if err := c.startReplica(c.replicas[name]); err != nil {
			return nil, err
		}
	}
	if err := c.rebuild(); err != nil {
		return nil, err
	}
	c.monCtx, c.monCancel = context.WithCancel(context.Background())
	c.startMonitor()
	return c, nil
}

// rebuild reconstructs the coordinator's assignment table and id
// counter from the replicas' journals, and completes orphaned steals: a
// job marked stolen in a victim's journal whose thief never journaled
// it means the previous coordinator crashed between MarkStolen and the
// thief's admission — the recoverable half of the steal crash window.
func (c *Cluster) rebuild() error {
	c.mu.Lock()
	defer c.mu.Unlock()

	type orphan struct{ victim, thief string; job serve.JournalJob }
	var orphans []orphan
	present := make(map[string]map[string]bool, len(c.names))
	journals := make(map[string][]serve.JournalJob, len(c.names))
	for _, name := range c.names {
		//lint:ignore lockscope construction-time journal replay; no concurrent dispatchers yet
		jobs, err := serve.ReadJournalJobs(c.replicas[name].spool)
		if err != nil {
			return fmt.Errorf("fleet: rebuild: replica %s journal: %w", name, err)
		}
		journals[name] = jobs
		present[name] = make(map[string]bool, len(jobs))
		for _, j := range jobs {
			present[name][j.ID] = true
			if n := jobSeq(j.ID); n > c.submits {
				c.submits = n
			}
		}
	}
	for _, name := range c.names {
		for _, j := range journals[name] {
			if !j.Stolen {
				c.assign[j.ID] = name
				continue
			}
			if p := present[j.Thief]; p != nil && p[j.ID] {
				c.assign[j.ID] = j.Thief
			} else {
				orphans = append(orphans, orphan{victim: name, thief: j.Thief, job: j})
			}
		}
	}
	for _, o := range orphans {
		thief := c.replicas[o.thief]
		if thief == nil || thief.srv == nil {
			c.cfg.Logf("rebuild: orphaned steal of %s (thief %s gone); leaving with victim %s",
				o.job.ID, o.thief, o.victim)
			c.assign[o.job.ID] = o.victim
			continue
		}
		//lint:ignore lockscope construction-time repair; no concurrent dispatchers yet
		if err := c.transferJob(c.replicas[o.victim], thief, o.job); err != nil {
			return fmt.Errorf("fleet: rebuild: completing orphaned steal of %s: %w", o.job.ID, err)
		}
		c.assign[o.job.ID] = o.thief
		c.counter("fleet.jobs.orphan_steals_completed").Add(1)
		c.cfg.Logf("rebuild: completed orphaned steal of %s: %s -> %s", o.job.ID, o.victim, o.thief)
	}
	return nil
}

// jobSeq extracts the numeric suffix of a fleet job id ("j%06d"), or 0.
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "j%06d", &n); err != nil {
		return 0
	}
	return n
}

// Submit assigns the job an id and dispatches it along the id's ring
// failover sequence. Candidates that are dead or quarantined are
// skipped; a queue-bound rejection (serve.ErrBusy) moves on without a
// breaker penalty; a storage-degraded replica (resilience.ErrStorage:
// its journal cannot acknowledge writes) is penalized and skipped like
// a dead one; a transport failure penalizes the candidate's breaker and
// moves on; an invalid spec fails immediately (no replica could ever
// run it). An ambiguous outcome (ErrAmbiguous) stops the
// walk: the job may be durable on the suspect replica, so it is parked
// there for the steal pipeline to recover rather than risked on a
// second admission.
func (c *Cluster) Submit(ctx context.Context, spec []byte) (serve.JobStatus, string, error) {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		// Draining is "no replica will take this" by policy rather than
		// by health; callers shed it the same way.
		return serve.JobStatus{}, "", fmt.Errorf("fleet: draining: %w", ErrNoReplica)
	}
	c.submits++
	id := fmt.Sprintf("j%06d", c.submits)
	c.mu.Unlock()

	for _, name := range c.ring.Sequence(id) {
		c.mu.Lock()
		r := c.replicas[name]
		skip := r.dead || r.srv == nil
		if !skip && !r.breaker.Allow() {
			c.counter("fleet.dispatch.quarantined").Add(1)
			skip = true
		}
		c.mu.Unlock()
		if skip {
			continue
		}
		st, err := c.tr.Submit(ctx, name, id, spec)
		switch {
		case err == nil:
			r.breaker.Success()
			c.mu.Lock()
			c.assign[id] = name
			c.mu.Unlock()
			c.counter("fleet.jobs.submitted").Add(1)
			return st, name, nil
		case errors.Is(err, serve.ErrBusy):
			c.counter("fleet.dispatch.busy").Add(1)
		case errors.Is(err, resilience.ErrStorage):
			// The replica's journal cannot durably acknowledge anything —
			// ENOSPC, EIO, a poisoned appender. For new work that is a dead
			// replica, not backpressure: penalize its breaker so the walk
			// stops consulting it, and fail over to the next candidate.
			r.breaker.Failure()
			c.counter("fleet.dispatch.storage_degraded").Add(1)
			c.cfg.Logf("dispatch %s to %s: storage degraded: %v", id, name, err)
		case errors.Is(err, resilience.ErrInvalidDesign):
			c.counter("fleet.jobs.rejected.invalid").Add(1)
			return serve.JobStatus{}, "", err
		case errors.Is(err, ErrAmbiguous):
			r.breaker.Failure()
			c.mu.Lock()
			c.assign[id] = name
			c.mu.Unlock()
			c.counter("fleet.dispatch.ambiguous").Add(1)
			return serve.JobStatus{}, name, fmt.Errorf(
				"fleet: job %s: %w (recovered after failover if admitted)", id, err)
		default:
			r.breaker.Failure()
			c.counter("fleet.dispatch.failures").Add(1)
			c.cfg.Logf("dispatch %s to %s: %v", id, name, err)
		}
	}
	c.counter("fleet.jobs.rejected.unavailable").Add(1)
	return serve.JobStatus{}, "", ErrNoReplica
}

// Status returns a job's status and its owning replica. A job whose
// owner is down but not yet recovered reports its last journaled state.
func (c *Cluster) Status(ctx context.Context, id string) (serve.JobStatus, string, bool) {
	c.mu.Lock()
	name, ok := c.assign[id]
	if !ok {
		c.mu.Unlock()
		return serve.JobStatus{}, "", false
	}
	r := c.replicas[name]
	down := r == nil || r.srv == nil
	fencing := r != nil && r.fencing
	c.mu.Unlock()

	if !down {
		st, ok, err := c.tr.Status(ctx, name, id)
		if err == nil {
			return st, name, ok
		}
		down = true
	}
	if down && !fencing {
		// The owner is quiescent (crashed or fenced); its journal is the
		// authoritative record until a steal moves the job.
		if jobs, err := serve.ReadJournalJobs(spoolFor(c.cfg.SpoolDir, name)); err == nil {
			for _, j := range jobs {
				if j.ID == id {
					return j.Status, name, true
				}
			}
		}
	}
	// Owner mid-fence: report the assignment with a conservative state.
	return serve.JobStatus{ID: id, State: serve.StateSuspended}, name, true
}

// ResultPath returns the spool path of a done job's result on its
// owning replica (the artifact may still live in a fenced victim's
// spool before the steal completes — reading it there is safe, the
// spool is quiescent).
func (c *Cluster) ResultPath(id string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	name, ok := c.assign[id]
	if !ok {
		return "", false
	}
	return serve.SpoolArtifact(spoolFor(c.cfg.SpoolDir, name), id, "out.json"), true
}

// startMonitor launches the heartbeat/repair loop. Together with
// startAccept this is the only sanctioned goroutine launch site in this
// package (enforced by skewlint's poolbound analyzer): stealing, fencing,
// and quarantine bookkeeping all run on this one goroutine, so replica
// state transitions are single-writer by construction.
func (c *Cluster) startMonitor() {
	c.monDone = make(chan struct{})
	go func() {
		defer close(c.monDone)
		t := time.NewTicker(c.cfg.HeartbeatEvery)
		defer t.Stop()
		// Shutdown-vs-tick is a liveness race, not a replay one: failover
		// decisions are journaled, and recovery replays the journal, not
		// the monitor's schedule.
		for {
			//lint:ignore detsource ticker-vs-shutdown race; recovery replays the journal, not this schedule
			select {
			case <-c.monCtx.Done():
				return
			case <-t.C:
				c.tick()
			}
		}
	}()
}

// tick is one monitor round: retry unfinished steals, ping every live
// replica, advance breaker cooldowns/probes, and declare-dead → fence →
// steal when a replica's misses cross the threshold.
func (c *Cluster) tick() {
	for _, name := range c.names {
		c.mu.Lock()
		r := c.replicas[name]
		if r.dead {
			retrySteal := r.fenced && !r.stolen
			c.mu.Unlock()
			if retrySteal {
				c.stealFrom(r)
			}
			continue
		}
		c.mu.Unlock()

		// The ping doubles as the breaker's half-open probe: Allow both
		// grants the probe and, while open, counts this tick against the
		// cooldown — which is what makes the call-counted cooldown behave
		// like a time window.
		probing := r.breaker.Allow()
		err := c.tr.Ping(c.monCtx, name)
		if probing {
			if err == nil {
				r.breaker.Success()
			} else {
				r.breaker.Failure()
			}
		}

		c.mu.Lock()
		if err != nil {
			r.misses++
			c.counter("fleet.heartbeat.misses").Add(1)
			if r.misses >= c.cfg.MissThreshold && !r.dead {
				c.declareDeadLocked(r)
				continue // declareDeadLocked released the lock
			}
		} else {
			r.misses = 0
		}
		c.mu.Unlock()
	}
}

// declareDeadLocked transitions a replica to dead, fences it, and
// steals its journal. Called with c.mu held; returns with it released
// (fencing blocks on worker quiescence and must not hold the lock).
func (c *Cluster) declareDeadLocked(r *replica) {
	r.dead = true
	r.fencing = true
	srv := r.srv
	r.srv = nil
	c.mu.Unlock()

	c.counter("fleet.replicas.declared_dead").Add(1)
	c.cfg.Logf("replica %s declared dead after %d missed heartbeats; fencing", r.name, r.misses)
	if srv != nil {
		// STONITH: if the death was a false positive (heartbeat delays on
		// a healthy replica), this crash-stop makes it true before any
		// peer touches the journal. A running job dies mid-flight and is
		// recovered from its checkpoint like any real crash.
		srv.Crash()
	}
	c.mu.Lock()
	r.fencing = false
	r.fenced = true
	c.mu.Unlock()

	c.stealFrom(r)
}

// stealFrom harvests a fenced replica's journal onto a surviving peer.
// Steal records land in the victim's journal before the thief admits
// anything, so a crash in between leaves an orphaned steal that rebuild
// completes — never a job admitted on two replicas. The whole pass is
// idempotent: already-stolen entries are skipped, MarkStolen tolerates
// repeats, and the thief's admission dedups on job id; a partial pass
// (thief queue full, say) leaves stolen=false and the next tick retries.
func (c *Cluster) stealFrom(victim *replica) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if victim.stolen || !victim.fenced {
		return
	}
	var thief *replica
	for _, name := range c.names {
		r := c.replicas[name]
		if r != victim && !r.dead && r.srv != nil {
			thief = r
			break
		}
	}
	if thief == nil {
		c.cfg.Logf("steal from %s: no live peer; will retry", victim.name)
		return
	}
	// The steal pass deliberately holds c.mu across journal I/O: it is the
	// single-writer repair path for a fenced (quiescent) replica, and the
	// assignment table must not be read mid-transfer. Dispatches stall for
	// one steal pass at worst; docs/ROBUSTNESS.md covers the trade.
	//lint:ignore lockscope fenced-replica repair pass; single writer by design
	jobs, err := serve.ReadJournalJobs(victim.spool)
	if err != nil {
		c.cfg.Logf("steal from %s: reading journal: %v; will retry", victim.name, err)
		return
	}
	var pending []serve.JournalJob
	var ids []string
	for _, j := range jobs {
		if j.Stolen {
			continue
		}
		pending = append(pending, j)
		ids = append(ids, j.ID)
	}
	if len(pending) == 0 {
		victim.stolen = true
		return
	}
	//lint:ignore lockscope fenced-replica repair pass; single writer by design
	if err := serve.MarkStolen(c.monCtx, victim.spool, thief.name, ids); err != nil {
		c.cfg.Logf("steal from %s: marking journal: %v; will retry", victim.name, err)
		return
	}
	complete := true
	for _, j := range pending {
		//lint:ignore lockscope fenced-replica repair pass; single writer by design
		if err := c.transferJob(victim, thief, j); err != nil {
			c.cfg.Logf("steal %s from %s: %v; will retry", j.ID, victim.name, err)
			complete = false
			continue
		}
		c.assign[j.ID] = thief.name
		if j.Terminal {
			c.counter("fleet.jobs.adopted").Add(1)
		} else {
			c.counter("fleet.jobs.stolen").Add(1)
		}
	}
	victim.stolen = complete
	c.cfg.Logf("steal from %s -> %s: %d jobs (complete=%v)", victim.name, thief.name, len(pending), complete)
}

// transferJob moves one journaled job from a fenced victim to a thief:
// terminal jobs have their artifacts copied and their outcome adopted;
// non-terminal jobs get their checkpoint copied and are re-admitted
// under their original id, resuming where the victim left off.
// Idempotent — the thief's journal dedups on id either way.
func (c *Cluster) transferJob(victim, thief *replica, j serve.JournalJob) error {
	if j.Terminal {
		for _, suffix := range []string{"out.json", "trace.jsonl", "metrics.json"} {
			if err := copyArtifact(victim.spool, thief.spool, j.ID, suffix); err != nil {
				return fmt.Errorf("copying %s: %w", suffix, err)
			}
		}
		return thief.srv.AdoptFinished(context.Background(), j.ID, j.Spec, j.Status)
	}
	if err := copyArtifact(victim.spool, thief.spool, j.ID, "ckpt"); err != nil {
		return fmt.Errorf("copying ckpt: %w", err)
	}
	_, err := thief.srv.Admit(context.Background(), j.ID, j.Spec)
	return err
}

// crashReplica crash-stops a replica's server in place (fault injection
// and the /admin/crash endpoint). The coordinator is NOT told: it finds
// out the way it would about a real dead node, by missed heartbeats,
// which then drive the fence-and-steal recovery.
func (c *Cluster) crashReplica(name string) {
	c.mu.Lock()
	r := c.replicas[name]
	if r == nil || r.srv == nil {
		c.mu.Unlock()
		return
	}
	srv := r.srv
	r.srv = nil
	c.mu.Unlock()
	// Crash returns once the worker pool is quiescent; until heartbeats
	// declare the replica dead, dispatches to it simply bounce.
	srv.Crash()
}

// RestartReplica brings a crashed or dead replica back: a fresh
// serve.Server on the same spool, whose journal replay resumes any
// not-stolen jobs and skips stolen-away ones. The breaker resets — a
// restarted replica earns failures from scratch.
func (c *Cluster) RestartReplica(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.replicas[name]
	if r == nil {
		return fmt.Errorf("fleet: no replica %q: %w", name, ErrNoSuchReplica)
	}
	if r.srv != nil {
		return fmt.Errorf("fleet: replica %s is running: %w", name, ErrReplicaState)
	}
	if r.fencing {
		return fmt.Errorf("fleet: replica %s is being fenced; retry: %w", name, ErrReplicaState)
	}
	// Restart is an admin operation: holding c.mu through the spool mkdir
	// and journal replay keeps dispatchers from racing the half-started
	// replica, and admin restarts are rare enough to eat the latency.
	//lint:ignore lockscope admin-path restart; dispatchers must not see a half-started replica
	if err := c.startReplica(r); err != nil {
		return err
	}
	r.breaker.Success()
	// Jobs still journaled here (not stolen away) are this replica's again.
	for _, id := range r.srv.JobIDs() {
		c.assign[id] = name
	}
	c.counter("fleet.replicas.restarted").Add(1)
	c.cfg.Logf("replica %s restarted (incarnation %d)", name, r.incarnation)
	return nil
}

// CrashReplica crash-stops a replica by name (the /admin/crash
// endpoint). Recovery happens through heartbeat detection, not here.
func (c *Cluster) CrashReplica(name string) error {
	c.mu.Lock()
	r := c.replicas[name]
	c.mu.Unlock()
	if r == nil {
		return fmt.Errorf("fleet: no replica %q: %w", name, ErrNoSuchReplica)
	}
	c.counter("fleet.replicas.admin_crashed").Add(1)
	c.crashReplica(name)
	return nil
}

// Metrics returns the coordinator's snapshot merged with every live
// replica's, per-metric associative (obs.Merge): counters and
// histograms add across the fleet, gauges keep the last write. Fenced
// replicas' in-memory recorders died with them; their per-job metrics
// artifacts survive in their spools.
func (c *Cluster) Metrics() obs.Snapshot {
	c.mu.Lock()
	srvs := make([]*serve.Server, 0, len(c.names))
	for _, name := range c.names {
		if r := c.replicas[name]; r.srv != nil {
			srvs = append(srvs, r.srv)
		}
	}
	c.mu.Unlock()
	snap := c.cfg.Obs.Snapshot()
	for _, s := range srvs {
		snap = obs.Merge(snap, s.Metrics())
	}
	return snap
}

// ReplicaInfo is one replica's state for the /replicas endpoint.
type ReplicaInfo struct {
	Name        string      `json:"name"`
	State       string      `json:"state"` // alive | crashed | fencing | dead | dead-stolen
	Breaker     string      `json:"breaker"`
	Misses      int         `json:"misses"`
	Incarnation int         `json:"incarnation"`
	Stats       serve.Stats `json:"stats"`
}

// Replicas reports every replica's health, quarantine, and load state.
func (c *Cluster) Replicas() []ReplicaInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ReplicaInfo, 0, len(c.names))
	for _, name := range c.names {
		r := c.replicas[name]
		info := ReplicaInfo{
			Name:        name,
			Breaker:     r.breaker.State().String(),
			Misses:      r.misses,
			Incarnation: r.incarnation,
		}
		switch {
		case r.fencing:
			info.State = "fencing"
		case r.dead && r.stolen:
			info.State = "dead-stolen"
		case r.dead:
			info.State = "dead"
		case r.srv == nil:
			info.State = "crashed"
		default:
			info.State = "alive"
			info.Stats = r.srv.Stats()
		}
		out = append(out, info)
	}
	return out
}

// Ready reports whether the fleet can admit work: not draining and at
// least one replica alive.
func (c *Cluster) Ready() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return false
	}
	for _, r := range c.replicas {
		if r.srv != nil && !r.dead {
			return true
		}
	}
	return false
}

// Drain stops the monitor, then drains every live replica. It reports
// whether the fleet settled: every replica drained cleanly within its
// budget (suspended jobs count as settled — they are journaled and
// resume on the next start).
func (c *Cluster) Drain() bool {
	c.mu.Lock()
	if c.draining {
		c.mu.Unlock()
		<-c.monDone
		return true
	}
	c.draining = true
	c.mu.Unlock()

	c.monCancel()
	<-c.monDone

	settled := true
	c.mu.Lock()
	srvs := make([]*serve.Server, 0, len(c.names))
	for _, name := range c.names {
		if r := c.replicas[name]; r.srv != nil {
			srvs = append(srvs, r.srv)
		}
	}
	c.mu.Unlock()
	for _, s := range srvs {
		if !s.Drain() {
			settled = false
		}
	}
	return settled
}

// liveServer returns the named replica's server, or nil when it is
// crashed, dead, or unknown.
func (c *Cluster) liveServer(name string) *serve.Server {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.replicas[name]
	if r == nil {
		return nil
	}
	return r.srv
}

func (c *Cluster) counter(name string) *obs.Counter { return c.cfg.Obs.Counter(name) }
