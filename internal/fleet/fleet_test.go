package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"skewvar/internal/core"
	"skewvar/internal/edaio"
	"skewvar/internal/faults"
	"skewvar/internal/lut"
	"skewvar/internal/obs"
	"skewvar/internal/resilience"
	"skewvar/internal/serve"
	"skewvar/internal/tech"
	"skewvar/internal/testgen"
)

// Shared, read-only fixtures, mirroring the serve package's.
var (
	fixOnce   sync.Once
	fixTech   *tech.Tech
	fixChar   *lut.Char
	fixModel  core.StageModel
	fixDesign []byte
	fixErr    error
)

func fixtures(t *testing.T) (*tech.Tech, *lut.Char, core.StageModel, []byte) {
	t.Helper()
	fixOnce.Do(func() {
		fixTech = tech.Default28nm()
		fixChar = lut.Characterize(fixTech)
		m, err := core.TrainStageModel(context.Background(), fixTech, core.TrainConfig{
			Cases: 8, MovesPerCase: 8, Kind: "ridge", Seed: 7,
		})
		if err != nil {
			fixErr = err
			return
		}
		fixModel = m
		d, _, err := testgen.Build(fixTech, testgen.CLS1v1(48))
		if err != nil {
			fixErr = err
			return
		}
		var buf bytes.Buffer
		if err := edaio.WriteDesign(&buf, d); err != nil {
			fixErr = err
			return
		}
		fixDesign = buf.Bytes()
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixTech, fixChar, fixModel, fixDesign
}

func jobSpec(t *testing.T, mod func(*serve.JobRequest)) []byte {
	t.Helper()
	_, _, _, design := fixtures(t)
	req := serve.JobRequest{Design: design, Flow: "local", Pairs: 40, Iters: 2}
	if mod != nil {
		mod(&req)
	}
	b, err := json.Marshal(&req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// testCluster builds, starts, and registers cleanup for a small fast
// cluster; mod (optional) edits the config before New.
func testCluster(t *testing.T, spool string, mod func(*Config)) *Cluster {
	t.Helper()
	th, ch, model, _ := fixtures(t)
	cfg := Config{
		SpoolDir:       spool,
		Replicas:       3,
		Workers:        2,
		QueueDepth:     8,
		JobTimeout:     time.Minute,
		DrainTimeout:   5 * time.Second,
		HeartbeatEvery: 10 * time.Millisecond,
		MissThreshold:  3,
		Tech:           th,
		Char:           ch,
		Model:          model,
		Obs:            obs.New(),
		Logf:           t.Logf,
	}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Drain() })
	return c
}

// waitState polls until the job reaches one of the wanted states.
func waitState(t *testing.T, c *Cluster, id string, want ...string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, _, ok := c.Status(context.Background(), id)
		if ok {
			for _, w := range want {
				if st.State == w {
					return st
				}
			}
			switch st.State {
			case serve.StateFailed, serve.StateCanceled:
				t.Fatalf("job %s reached %s (%s: %s), wanted %v", id, st.State, st.Class, st.Error, want)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %v", id, want)
	return serve.JobStatus{}
}

// TestRingDeterminism pins the placement contract: the same id always
// maps to the same failover sequence, every replica appears exactly
// once per sequence, and the load spread over many ids touches every
// replica.
func TestRingDeterminism(t *testing.T) {
	names := []string{"r0", "r1", "r2", "r3", "r4"}
	r1, r2 := newRing(names), newRing(names)
	counts := map[string]int{}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("j%06d", i)
		a, b := r1.Sequence(id), r2.Sequence(id)
		if len(a) != len(names) {
			t.Fatalf("sequence for %s has %d entries, want %d", id, len(a), len(names))
		}
		seen := map[string]bool{}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("sequence for %s differs between identical rings: %v vs %v", id, a, b)
			}
			if seen[a[j]] {
				t.Fatalf("sequence for %s repeats %s: %v", id, a[j], a)
			}
			seen[a[j]] = true
		}
		counts[a[0]]++
	}
	for _, n := range names {
		if counts[n] == 0 {
			t.Fatalf("replica %s owns no ids out of 500: %v", n, counts)
		}
	}
}

// TestSubmitAndSpread runs a handful of jobs through a healthy cluster
// and checks they all finish and land on more than one replica.
func TestSubmitAndSpread(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	c := testCluster(t, t.TempDir(), nil)
	spec := jobSpec(t, nil)
	owners := map[string]bool{}
	var ids []string
	for i := 0; i < 6; i++ {
		st, owner, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		owners[owner] = true
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, c, id, serve.StateDone)
	}
	if len(owners) < 2 {
		t.Errorf("6 jobs all landed on one replica: %v", owners)
	}
}

// TestQuarantineAndRecovery drives breakers open with dropped dispatch
// RPCs (threshold 1: one drop quarantines), verifies every submission
// still succeeds by failing over along the ring, later submissions skip
// quarantined replicas, and the heartbeat probe eventually closes every
// breaker again.
func TestQuarantineAndRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	// Two drops: the first submission burns both on its first two ring
	// candidates and lands on the third; the two penalized breakers open.
	inj, err := faults.Parse("rpc-drop:first=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := testCluster(t, t.TempDir(), func(cfg *Config) {
		cfg.Faults = inj
		cfg.BreakerThreshold = 1
		cfg.BreakerCooldown = 6
	})
	spec := jobSpec(t, nil)
	var ids []string
	for i := 0; i < 6; i++ {
		st, _, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, c, id, serve.StateDone)
	}
	snap := c.Metrics()
	if snap.Counters["fleet.dispatch.failures"] != 2 {
		t.Errorf("fleet.dispatch.failures = %d, want 2", snap.Counters["fleet.dispatch.failures"])
	}
	if snap.Counters["fleet.dispatch.quarantined"] == 0 {
		t.Error("no dispatch ever skipped a quarantined replica")
	}
	// The injector is exhausted (first=2); heartbeat probes must close
	// every breaker again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		allClosed := true
		for _, ri := range c.Replicas() {
			if ri.Breaker != "closed" {
				allClosed = false
			}
		}
		if allClosed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breakers never re-closed: %+v", c.Replicas())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHeartbeatDeathAndSteal crashes a replica that owns jobs and
// verifies the monitor declares it dead, fences it, and a peer steals
// and finishes every job — none lost, none duplicated.
func TestHeartbeatDeathAndSteal(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	spool := t.TempDir()
	c := testCluster(t, spool, nil)
	spec := jobSpec(t, nil)
	byOwner := map[string][]string{}
	for i := 0; i < 6; i++ {
		st, owner, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		byOwner[owner] = append(byOwner[owner], st.ID)
	}
	var victim string
	for owner, ids := range byOwner {
		if len(ids) > 0 {
			victim = owner
			break
		}
	}
	if err := c.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	for _, ids := range byOwner {
		for _, id := range ids {
			waitState(t, c, id, serve.StateDone)
		}
	}
	// The victim's journal must show every one of its jobs stolen, and
	// no job id may be active (submitted, not stolen-away) in more than
	// one journal.
	active := map[string]int{}
	for _, ri := range c.Replicas() {
		jobs, err := serve.ReadJournalJobs(filepath.Join(spool, ri.Name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		for _, j := range jobs {
			if !j.Stolen {
				active[j.ID]++
			}
		}
	}
	for id, n := range active {
		if n != 1 {
			t.Errorf("job %s is active in %d journals, want exactly 1", id, n)
		}
	}
	if len(active) != 6 {
		t.Errorf("%d active jobs across journals, want 6", len(active))
	}
	// The dead replica restarts empty-handed: its journal replay skips
	// every stolen-away job.
	if err := c.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	st, _, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, serve.StateDone)
}

// TestAmbiguousDispatchRecovery fires replica-crash on the second
// dispatch: the job is durably admitted but the ack is lost. The
// coordinator must not re-admit it elsewhere; the steal pipeline must
// recover it to done exactly once.
func TestAmbiguousDispatchRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	inj, err := faults.Parse("replica-crash:at=2", 1)
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	c := testCluster(t, spool, func(cfg *Config) { cfg.Faults = inj })
	spec := jobSpec(t, nil)

	st1, _, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	_, suspect, err := c.Submit(context.Background(), spec)
	if err == nil {
		t.Fatal("second submit succeeded; replica-crash:at=2 should have lost the ack")
	}
	if suspect == "" {
		t.Fatal("ambiguous dispatch did not report the suspect replica")
	}
	// Both jobs — the acked one and the ambiguous one — must finish,
	// the ambiguous one exactly once via the steal.
	waitState(t, c, st1.ID, serve.StateDone)
	waitState(t, c, "j000002", serve.StateDone)

	active := map[string]int{}
	for _, ri := range c.Replicas() {
		jobs, err := serve.ReadJournalJobs(filepath.Join(spool, ri.Name))
		if err != nil {
			continue
		}
		for _, j := range jobs {
			if !j.Stolen {
				active[j.ID]++
			}
		}
	}
	if active["j000002"] != 1 {
		t.Errorf("ambiguous job active in %d journals, want exactly 1", active["j000002"])
	}
}

// TestStealIdempotent re-runs a steal pass against a victim journal a
// peer already harvested and verifies nothing is re-admitted: the
// thief's job set and journal length are unchanged.
func TestStealIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	spool := t.TempDir()
	c := testCluster(t, spool, nil)
	spec := jobSpec(t, nil)
	st, owner, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, serve.StateDone)
	if err := c.CrashReplica(owner); err != nil {
		t.Fatal(err)
	}
	// Wait until the monitor's steal marked the victim's journal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		jobs, err := serve.ReadJournalJobs(filepath.Join(spool, owner))
		if err == nil && len(jobs) > 0 && jobs[0].Stolen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim journal never marked stolen")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.mu.Lock()
	victim := c.replicas[owner]
	c.mu.Unlock()

	before := journalLen(t, filepath.Join(spool, owner))
	// Force the pass to re-run from scratch, as a crashed-and-restarted
	// coordinator would.
	c.mu.Lock()
	victim.stolen = false
	c.mu.Unlock()
	c.stealFrom(victim)
	c.stealFrom(victim)
	after := journalLen(t, filepath.Join(spool, owner))
	if after != before {
		t.Errorf("re-stealing grew the victim journal: %d -> %d records", before, after)
	}
	st2, _, ok := c.Status(context.Background(), st.ID)
	if !ok || st2.State != serve.StateDone {
		t.Errorf("job after double steal: %+v (ok=%v)", st2, ok)
	}
}

// journalLen counts raw journal records in a spool — an exact measure
// of whether a repeated steal appended anything.
func journalLen(t *testing.T, spoolDir string) int {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(spoolDir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	return bytes.Count(b, []byte("\n"))
}

// TestMetricsAggregation checks /metrics is the associative fold of the
// replicas: the fleet-wide submitted counter and job-duration histogram
// must account for every job regardless of which replica ran it.
func TestMetricsAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	c := testCluster(t, t.TempDir(), nil)
	spec := jobSpec(t, nil)
	const n = 5
	var ids []string
	for i := 0; i < n; i++ {
		st, _, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, c, id, serve.StateDone)
	}
	snap := c.Metrics()
	if got := snap.Counters["fleet.jobs.submitted"]; got != n {
		t.Errorf("fleet.jobs.submitted = %d, want %d", got, n)
	}
	if got := snap.Counters["serve.jobs.done"]; got != n {
		t.Errorf("merged serve.jobs.done = %d, want %d", got, n)
	}
	h, ok := snap.Histograms["serve.job.duration_ns"]
	if !ok {
		t.Fatal("merged snapshot lacks serve.job.duration_ns histogram")
	}
	if h.Count != n {
		t.Errorf("merged duration histogram count = %d, want %d", h.Count, n)
	}
	// Associativity: folding the per-replica snapshots in any order must
	// agree with the cluster's own fold.
	var alt obs.Snapshot
	infos := c.Replicas()
	for i := len(infos) - 1; i >= 0; i-- {
		if srv := c.liveServer(infos[i].Name); srv != nil {
			alt = obs.Merge(alt, srv.Metrics())
		}
	}
	alt = obs.Merge(alt, c.cfg.Obs.Snapshot())
	if alt.Counters["serve.jobs.done"] != snap.Counters["serve.jobs.done"] ||
		alt.Histograms["serve.job.duration_ns"].Count != h.Count {
		t.Error("merge order changed the aggregate — Merge is not associative over these inputs")
	}
}

// TestRebuildCompletesOrphanSteal constructs the steal crash window by
// hand — victim journal marked stolen, thief never admitted — and
// verifies a fresh New completes the transfer and the job reaches done.
func TestRebuildCompletesOrphanSteal(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	spool := t.TempDir()
	spec := jobSpec(t, nil)

	// Run a single-replica fleet to get a journaled, unfinished job:
	// submit with a tiny timeout so it suspends... simpler: submit and
	// crash the replica before completion is not deterministic. Instead,
	// journal the submission directly through a serve.Server that never
	// starts workers.
	th, ch, model, _ := fixtures(t)
	r0 := filepath.Join(spool, "r0")
	if err := os.MkdirAll(r0, 0o755); err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		SpoolDir: r0, Workers: 1, QueueDepth: 8,
		Tech: th, Char: ch, Model: model, Obs: obs.New(), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Admit(context.Background(), "j000001", spec); err != nil {
		t.Fatal(err)
	}
	srv.Crash() // no workers started; journal holds a pending submit

	// Mark it stolen by r1 — but "crash" before r1 ever hears of it.
	if err := serve.MarkStolen(context.Background(), r0, "r1", []string{"j000001"}); err != nil {
		t.Fatal(err)
	}

	c := testCluster(t, spool, func(cfg *Config) { cfg.Replicas = 2 })
	st, owner, ok := c.Status(context.Background(), "j000001")
	if !ok {
		t.Fatal("rebuilt cluster does not know the orphaned job")
	}
	if owner != "r1" {
		t.Errorf("orphaned steal assigned to %s, want thief r1", owner)
	}
	_ = st
	waitState(t, c, "j000001", serve.StateDone)

	snap := c.Metrics()
	if snap.Counters["fleet.jobs.orphan_steals_completed"] != 1 {
		t.Errorf("orphan_steals_completed = %d, want 1",
			snap.Counters["fleet.jobs.orphan_steals_completed"])
	}
}

// TestFalsePositiveFencing delays heartbeats long enough to declare a
// healthy, working replica dead. Fencing must crash-stop it before the
// steal, and the stolen job must still finish correctly elsewhere.
func TestFalsePositiveFencing(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	// Two replicas, ticks probe r0 then r1. Five delayed heartbeats in a
	// row: ticks 1-2 miss both replicas (calls 1-4), tick 3's r0 probe
	// (call 5) is the third miss that declares r0 dead — a false
	// positive, r0 is healthy and may be mid-job — while r1's tick-3
	// probe succeeds (plan exhausted) and resets its misses. Fencing
	// crash-stops r0 before the steal, so the job finishes exactly once
	// on r1, resumed from r0's checkpoint if one landed.
	inj, err := faults.Parse("heartbeat-delay:first=5", 1)
	if err != nil {
		t.Fatal(err)
	}
	spool := t.TempDir()
	c := testCluster(t, spool, func(cfg *Config) {
		cfg.Faults = inj
		cfg.Replicas = 2
	})
	spec := jobSpec(t, nil)
	var ids []string
	for i := 0; i < 3; i++ {
		st, _, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		waitState(t, c, id, serve.StateDone)
	}

	active := map[string]int{}
	for _, ri := range c.Replicas() {
		jobs, err := serve.ReadJournalJobs(filepath.Join(spool, ri.Name))
		if err != nil {
			continue
		}
		for _, j := range jobs {
			if !j.Stolen {
				active[j.ID]++
			}
		}
	}
	for _, id := range ids {
		if active[id] != 1 {
			t.Errorf("job %s active in %d journals after false-positive fencing, want 1", id, active[id])
		}
	}
	// The delayed heartbeats must actually have killed a replica for the
	// test to have exercised the false-positive path.
	snap := c.Metrics()
	if snap.Counters["fleet.replicas.declared_dead"] == 0 {
		t.Error("no replica was declared dead under the heartbeat-delay plan")
	}
}

// TestBreakerBackedByResilience pins that the fleet uses the shared
// breaker implementation (state names on /replicas come from it).
func TestBreakerBackedByResilience(t *testing.T) {
	b := resilience.NewBreaker(resilience.BreakerConfig{})
	if got := b.State().String(); got != "closed" {
		t.Fatalf("fresh breaker state %q", got)
	}
}

// TestGroupCommitStealNoLoss reruns the crash-and-steal pipeline with
// replica journals in group-commit mode (batch 8, 2ms window): the
// tuning threads through Config to every replica, and the no-loss
// invariant — every admitted job active in exactly one journal after the
// steal — holds exactly as in the fsync-per-line baseline.
func TestGroupCommitStealNoLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	spool := t.TempDir()
	c := testCluster(t, spool, func(cfg *Config) {
		cfg.JournalBatch = 8
		cfg.JournalWindow = 2 * time.Millisecond
	})
	spec := jobSpec(t, nil)
	byOwner := map[string][]string{}
	var ids []string
	for i := 0; i < 4; i++ {
		st, owner, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		byOwner[owner] = append(byOwner[owner], st.ID)
		ids = append(ids, st.ID)
	}
	var victim string
	for owner, own := range byOwner {
		if len(own) > 0 {
			victim = owner
			break
		}
	}
	if err := c.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		waitState(t, c, id, serve.StateDone)
	}
	active := map[string]int{}
	for _, ri := range c.Replicas() {
		jobs, err := serve.ReadJournalJobs(filepath.Join(spool, ri.Name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		for _, j := range jobs {
			if !j.Stolen {
				active[j.ID]++
			}
		}
	}
	for _, id := range ids {
		if active[id] != 1 {
			t.Errorf("job %s active in %d journals under group commit, want exactly 1", id, active[id])
		}
	}
}

// TestStealFromCompactedReplica kills a replica whose journal has been
// folded into a snapshot: an aggressive CompactEvery makes every replica
// compact after its first settled jobs, so the victim's durable state is
// snapshot + genesis + tail rather than a flat journal. The steal
// pipeline must recover every job from that shape — terminal jobs
// adopted from the snapshot base, in-flight ones resumed — exactly as it
// does from an uncompacted journal.
func TestStealFromCompactedReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("drives full optimization flows; skipped in -short (race/cover)")
	}
	spool := t.TempDir()
	c := testCluster(t, spool, func(cfg *Config) { cfg.CompactEvery = 2 })
	spec := jobSpec(t, nil)

	// Wave 1 settles fully, so every loaded replica crosses the
	// two-record compaction threshold and snapshots.
	byOwner := map[string][]string{}
	var all []string
	for i := 0; i < 6; i++ {
		st, owner, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		byOwner[owner] = append(byOwner[owner], st.ID)
		all = append(all, st.ID)
	}
	for _, id := range all {
		waitState(t, c, id, serve.StateDone)
	}

	// Pick a victim that owns jobs AND has compacted (snapshot on disk).
	var victim string
	deadline := time.Now().Add(30 * time.Second)
	for victim == "" {
		for owner, ids := range byOwner {
			if len(ids) == 0 {
				continue
			}
			if _, err := os.Stat(filepath.Join(spool, owner, "jobs.snapshot")); err == nil {
				victim = owner
				break
			}
		}
		if victim == "" && time.Now().After(deadline) {
			t.Fatal("no loaded replica compacted despite CompactEvery=2")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Wave 2 goes out and the victim dies with it in flight, so the steal
	// walks a compacted spool holding both terminal and live jobs.
	for i := 0; i < 6; i++ {
		st, _, err := c.Submit(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, st.ID)
	}
	if err := c.CrashReplica(victim); err != nil {
		t.Fatal(err)
	}
	for _, id := range all {
		waitState(t, c, id, serve.StateDone)
	}

	// Admitted-set audit across every spool: each job active (not
	// stolen-away) in exactly one journal, none lost, none duplicated.
	active := map[string]int{}
	for _, ri := range c.Replicas() {
		jobs, err := serve.ReadJournalJobs(filepath.Join(spool, ri.Name))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		for _, j := range jobs {
			if !j.Stolen {
				active[j.ID]++
			}
		}
	}
	for id, n := range active {
		if n != 1 {
			t.Errorf("job %s is active in %d journals, want exactly 1", id, n)
		}
	}
	if len(active) != len(all) {
		t.Errorf("%d active jobs across journals, want %d", len(active), len(all))
	}

	// The victim restarts over its compacted, stolen-from spool and
	// rejoins cleanly.
	if err := c.RestartReplica(victim); err != nil {
		t.Fatal(err)
	}
	st, _, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, c, st.ID, serve.StateDone)
}
