package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerReplica is the virtual-node fan-out per replica. 64 vnodes
// keep the largest/smallest shard ratio within a few percent for small
// fleets while the ring stays tiny (N*64 points).
const vnodesPerReplica = 64

// ring is an immutable consistent-hash ring over replica names. Job ids
// hash onto the circle and are owned by the first vnode clockwise;
// liveness filtering happens at lookup time (Sequence skips nothing —
// the caller walks the preference order and applies its own health
// view), so membership changes never rebuild the ring and placement of
// jobs on surviving replicas is stable when one dies.
type ring struct {
	points []ringPoint // sorted by hash
	names  []string
}

type ringPoint struct {
	hash    uint64
	replica string
}

func newRing(names []string) *ring {
	r := &ring{names: append([]string(nil), names...)}
	for _, n := range names {
		for v := 0; v < vnodesPerReplica; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", n, v)),
				replica: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so the order is total and deterministic even
		// in the (astronomically unlikely) event of an FNV collision.
		return r.points[i].replica < r.points[j].replica
	})
	return r
}

// hash64 is FNV-1a over the key, passed through a splitmix64-style
// finalizer. Raw FNV avalanches poorly on short keys that differ only
// in their last characters — exactly what sequential job ids are — and
// without the finalizer whole runs of ids land in one replica's arc.
// Placement only needs a stable, evenly spread hash, not a
// cryptographic one.
func hash64(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sequence returns the failover preference order for a job id: the
// distinct replicas in clockwise vnode order starting at hash(id). The
// first entry is the home replica; dispatch walks the rest when earlier
// candidates are dead, quarantined, or at their queue bound.
func (r *ring) Sequence(id string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(id)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.names))
	out := make([]string, 0, len(r.names))
	for i := 0; i < len(r.points) && len(out) < len(r.names); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}

// Owner returns the home replica for a job id (the head of its
// failover sequence).
func (r *ring) Owner(id string) string {
	seq := r.Sequence(id)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}
