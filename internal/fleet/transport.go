package fleet

import (
	"context"
	"errors"

	"skewvar/internal/faults"
	"skewvar/internal/serve"
)

// ErrUnreachable reports an RPC that definitely never reached the
// replica: a dropped request, a partition, or a dead process. Safe to
// fail over — the replica cannot have admitted anything.
var ErrUnreachable = errors.New("fleet: replica unreachable")

// ErrAmbiguous reports a dispatch whose outcome is unknown: the request
// may have been admitted durably before the reply was lost (the classic
// ack-loss window). The coordinator must NOT fail such a job over to
// another replica — re-admitting it elsewhere while the original
// admission survives in the victim's journal would run it twice. The
// job is parked against the suspect replica and recovered, exactly
// once, by the fence-then-steal pipeline.
var ErrAmbiguous = errors.New("fleet: dispatch outcome unknown")

// Transport is the coordinator's view of a replica. The in-process
// implementation below is the only one today, but the interface is the
// seam where a real network client would slot in — and where the chaos
// harness injects its faults, so coordinator logic is exercised against
// the same failure surface a networked fleet would have.
type Transport interface {
	// Ping probes liveness and readiness. An error counts as a missed
	// heartbeat.
	Ping(ctx context.Context, replica string) error
	// Submit dispatches a job spec to a replica under a fleet-assigned
	// id. serve.ErrBusy means the replica's queue bound rejected it
	// (backpressure, not failure); ErrUnreachable means it was never
	// delivered; ErrAmbiguous means it may or may not have landed.
	Submit(ctx context.Context, replica, id string, spec []byte) (serve.JobStatus, error)
	// Status fetches one job's status from a replica.
	Status(ctx context.Context, replica, id string) (serve.JobStatus, bool, error)
}

// localTransport calls replicas' serve.Server methods directly,
// consulting the fault injector at the boundaries a real network would
// have. Each hook is consumed by exactly one call stream, so a plan
// like "rpc-drop:first=3" keeps its meaning regardless of how often
// clients poll or the monitor ticks:
//
//   - heartbeat-delay fires on Ping only and fails that probe — to a
//     deadline-based prober a delayed heartbeat and a lost one are
//     indistinguishable, so delay is modeled as loss. Short runs
//     exercise suspicion and recovery; runs past MissThreshold force a
//     false-positive death and prove fencing keeps the steal safe.
//   - rpc-drop fires on Submit only and loses the request before it
//     reaches the replica (ErrUnreachable). Runs of drops model a
//     partition and drive the dispatch breaker to quarantine.
//   - replica-crash fires in Submit after the job was durably admitted:
//     the replica is crash-stopped and the reply is lost
//     (ErrAmbiguous). Only the journal steal resolves the job's fate.
//
// Status is deliberately uninstrumented: its call count is driven by
// client polling, which would make fault timing nondeterministic.
type localTransport struct {
	c *Cluster
}

func (t *localTransport) Ping(ctx context.Context, name string) error {
	if t.c.cfg.Faults.Fire(faults.HeartbeatDelay) {
		t.c.counter("fleet.faults.heartbeat_delay").Add(1)
		return ErrUnreachable
	}
	srv := t.c.liveServer(name)
	if srv == nil {
		return ErrUnreachable
	}
	if !srv.Ready() {
		return errors.New("fleet: replica not ready")
	}
	return nil
}

func (t *localTransport) Submit(ctx context.Context, name, id string, spec []byte) (serve.JobStatus, error) {
	if t.c.cfg.Faults.Fire(faults.RPCDrop) {
		t.c.counter("fleet.faults.rpc_drop").Add(1)
		return serve.JobStatus{}, ErrUnreachable
	}
	srv := t.c.liveServer(name)
	if srv == nil {
		return serve.JobStatus{}, ErrUnreachable
	}
	st, err := srv.Admit(ctx, id, spec)
	if err != nil {
		return serve.JobStatus{}, err
	}
	if t.c.cfg.Faults.Fire(faults.ReplicaCrash) {
		t.c.counter("fleet.faults.replica_crash").Add(1)
		t.c.crashReplica(name)
		return serve.JobStatus{}, ErrAmbiguous
	}
	return st, nil
}

func (t *localTransport) Status(ctx context.Context, name, id string) (serve.JobStatus, bool, error) {
	srv := t.c.liveServer(name)
	if srv == nil {
		return serve.JobStatus{}, false, ErrUnreachable
	}
	st, ok := srv.Status(id)
	return st, ok, nil
}
