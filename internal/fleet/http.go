package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"skewvar/internal/resilience"
	"skewvar/internal/serve"
)

// maxJobBytes caps the POST /jobs request body, matching skewd's
// default.
const maxJobBytes = 32 << 20

type errorBody struct {
	Error string `json:"error"`
	Class string `json:"class,omitempty"`
}

// Handler wires the fleet API. It is skewd's API plus fleet-level
// introspection and chaos-admin endpoints:
//
//	POST /jobs                    submit   → 202 {id, state, replica} | 400 | 503
//	GET  /jobs/{id}               status   → 200 JobStatus+replica | 404
//	GET  /jobs/{id}/result        result   → 200 design | 409 | 404 | 500 | 504
//	GET  /replicas                per-replica health/quarantine/load
//	GET  /metrics                 fleet-merged obs.Snapshot
//	GET  /healthz                 coordinator liveness
//	GET  /readyz                  503 when draining or no replica alive
//	POST /admin/crash/{replica}   crash-stop a replica (chaos)
//	POST /admin/restart/{replica} restart a crashed/dead replica
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", c.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /replicas", c.handleReplicas)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.HandleFunc("POST /admin/crash/{replica}", c.handleCrash)
	mux.HandleFunc("POST /admin/restart/{replica}", c.handleRestart)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, class, format string, args ...interface{}) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Class: class})
}

func (c *Cluster) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid-design", "reading request body: %v", err)
		return
	}
	st, replicaName, err := c.Submit(r.Context(), body)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{
			"id": st.ID, "state": st.State, "replica": replicaName})
	case errors.Is(err, resilience.ErrInvalidDesign):
		writeError(w, http.StatusBadRequest, "invalid-design", "%v", err)
	case errors.Is(err, ErrAmbiguous):
		// The job may be durable on the (now suspect) replica; the steal
		// pipeline resolves it. 503 tells the client the dispatch did not
		// complete; Retry-After invites a fresh submission if it cares.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "ambiguous", "%v", err)
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "unavailable", "%v", err)
	}
}

type fleetStatus struct {
	serve.JobStatus
	Replica string `json:"replica"`
}

func (c *Cluster) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, replicaName, ok := c.Status(r.Context(), id)
	if !ok {
		writeError(w, http.StatusNotFound, "", "no such job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, fleetStatus{JobStatus: st, Replica: replicaName})
}

// handleResult mirrors skewd's result endpoint, streaming the artifact
// from whichever spool currently owns the job.
func (c *Cluster) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, _, ok := c.Status(r.Context(), id)
	if !ok {
		writeError(w, http.StatusNotFound, "", "no such job %q", id)
		return
	}
	switch st.State {
	case serve.StateDone:
		path, ok := c.ResultPath(id)
		if !ok {
			writeError(w, http.StatusNotFound, "", "no such job %q", id)
			return
		}
		f, err := os.Open(path)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal",
				"result missing for done job %s: %v", id, err)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		io.Copy(w, f)
	case serve.StateFailed:
		writeError(w, http.StatusInternalServerError, st.Class, "job failed: %s", st.Error)
	case serve.StateCanceled:
		writeError(w, http.StatusGatewayTimeout, st.Class, "job exceeded its deadline: %s", st.Error)
	default: // queued, running, suspended (including mid-recovery)
		writeError(w, http.StatusConflict, "", "job %s is %s", id, st.State)
	}
}

func (c *Cluster) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Replicas())
}

func (c *Cluster) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Metrics())
}

func (c *Cluster) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Cluster) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !c.Ready() {
		writeError(w, http.StatusServiceUnavailable, "unavailable", "fleet not ready")
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ready": true})
}

func (c *Cluster) handleCrash(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("replica")
	if err := c.CrashReplica(name); err != nil {
		writeError(w, http.StatusNotFound, "", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"replica": name, "state": "crashed"})
}

func (c *Cluster) handleRestart(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("replica")
	if err := c.RestartReplica(name); err != nil {
		code := http.StatusConflict // wrong state: retryable once it settles
		if errors.Is(err, ErrNoSuchReplica) {
			code = http.StatusNotFound
		}
		writeError(w, code, "", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"replica": name, "state": "alive"})
}

// StartHTTP serves the fleet API on the listener; the serve goroutine's
// exit error is delivered on AcceptErr after Shutdown.
func (c *Cluster) StartHTTP(ln net.Listener) {
	c.startAccept(ln)
}

// startAccept is the HTTP sibling of startMonitor — the second of the
// two sanctioned goroutine launch sites in this package.
func (c *Cluster) startAccept(ln net.Listener) {
	c.httpSrv = &http.Server{Handler: c.Handler()}
	c.acceptErr = make(chan error, 1)
	srv, ch := c.httpSrv, c.acceptErr
	go func() {
		ch <- srv.Serve(ln)
	}()
}

// AcceptErr reports the HTTP serve loop's exit error
// (http.ErrServerClosed after a clean Shutdown), or nil if HTTP was
// never started.
func (c *Cluster) AcceptErr() <-chan error {
	return c.acceptErr
}

// ShutdownHTTP stops the listener, letting in-flight requests finish
// within the drain budget.
func (c *Cluster) ShutdownHTTP() {
	if c.httpSrv == nil {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.DrainTimeout)
	defer cancel()
	c.httpSrv.Shutdown(ctx)
}
