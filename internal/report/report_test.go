package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "T", Headers: []string{"a", "bbbb"}}
	tb.AddRow("hello", "1")
	tb.AddRowf(3.5, "x")
	out := tb.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "hello") || !strings.Contains(out, "3.5") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Alignment: all data lines same length.
	if len(lines[1]) != len(lines[3]) {
		t.Errorf("misaligned: %q vs %q", lines[1], lines[3])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a"}}
	tb.AddRow("1", "2", "3") // wider than headers
	out := tb.Render()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := &Table{Headers: []string{"name", "v"}}
	tb.AddRow(`with,comma`, `with"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"with,comma"`) || !strings.Contains(csv, `"with""quote"`) {
		t.Errorf("quoting wrong: %s", csv)
	}
	if !strings.HasPrefix(csv, "name,v\n") {
		t.Errorf("header wrong: %s", csv)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}}
	out := SeriesCSV(s)
	if !strings.Contains(out, "s1,1,10\n") || !strings.Contains(out, "s1,2,20\n") {
		t.Errorf("series csv: %s", out)
	}
	// Mismatched lengths truncate safely.
	bad := Series{Name: "b", X: []float64{1, 2, 3}, Y: []float64{5}}
	out2 := SeriesCSV(bad)
	if strings.Count(out2, "\n") != 2 { // header + 1 row
		t.Errorf("truncation wrong: %s", out2)
	}
}
