// Package report renders the experiment artifacts — aligned text tables
// (Table-3/4/5 style), CSV series for the figures, and ASCII histograms —
// consumed by cmd/exptab and the benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells are used verbatim.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row built from (format, value) pairs applied through
// fmt.Sprintf with %v when no formatting is needed.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the aligned table as text.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	var rule []string
	for i := 0; i < cols; i++ {
		rule = append(rule, strings.Repeat("-", width[i]))
	}
	line(rule)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV returns the table as comma-separated values (cells containing commas
// or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence for figure data dumps.
type Series struct {
	Name string
	X, Y []float64
}

// SeriesCSV renders one or more series as long-format CSV
// (series,x,y per line).
func SeriesCSV(series ...Series) string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range series {
		n := len(s.X)
		if len(s.Y) < n {
			n = len(s.Y)
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}
