package tech

import (
	"math"
	"math/rand"
	"testing"
)

func TestDefault28nmValidates(t *testing.T) {
	th := Default28nm()
	if err := th.Validate(); err != nil {
		t.Fatal(err)
	}
	if th.NumCorners() != 4 {
		t.Errorf("corners = %d, want 4", th.NumCorners())
	}
	if len(th.Cells) != 5 {
		t.Errorf("cells = %d, want 5", len(th.Cells))
	}
}

func TestTable3CornerNames(t *testing.T) {
	cs := Table3Corners()
	want := []struct {
		name string
		p    Process
		v    float64
		b    BEOL
	}{
		{"c0", SS, 0.90, Cmax},
		{"c1", SS, 0.75, Cmax},
		{"c2", FF, 1.10, Cmin},
		{"c3", FF, 1.32, Cmin},
	}
	for i, w := range want {
		c := cs[i]
		if c.Name != w.name || c.Process != w.p || c.Voltage != w.v || c.BEOL != w.b {
			t.Errorf("corner %d = %v", i, c)
		}
	}
}

func TestProcessAndBEOLStrings(t *testing.T) {
	if SS.String() != "ss" || TT.String() != "tt" || FF.String() != "ff" {
		t.Error("process strings")
	}
	if Process(9).String() == "" || BEOL(9).String() == "" {
		t.Error("out-of-range enum strings empty")
	}
	if Cmax.String() != "Cmax" || Cmin.String() != "Cmin" || Ctyp.String() != "Ctyp" {
		t.Error("BEOL strings")
	}
	c := Table3Corners()[0]
	if c.String() == "" {
		t.Error("corner string empty")
	}
}

func TestDelayFactorOrdering(t *testing.T) {
	cs := Table3Corners()
	k := make([]float64, 4)
	for i, c := range cs {
		k[i] = DelayFactor(c)
	}
	// c1 (low voltage, ss) must be the slowest, c3 (1.32V ff) the fastest.
	if !(k[1] > k[0] && k[0] > k[2] && k[2] > k[3]) {
		t.Errorf("delay factors not ordered: %v", k)
	}
	// c1/c0 ratio should be in the vicinity of the paper's observed ~2-2.5×.
	if r := k[1] / k[0]; r < 1.4 || r > 3.0 {
		t.Errorf("c1/c0 ratio = %v, out of plausible range", r)
	}
}

func TestTableLookupBilinear(t *testing.T) {
	tab := &Table2D{
		SlewAxis: []float64{0, 10},
		LoadAxis: []float64{0, 10},
		Vals:     [][]float64{{0, 10}, {10, 20}},
	}
	if err := tab.Check(); err != nil {
		t.Fatal(err)
	}
	if v := tab.Lookup(5, 5); math.Abs(v-10) > 1e-12 {
		t.Errorf("center = %v, want 10", v)
	}
	if v := tab.Lookup(0, 0); v != 0 {
		t.Errorf("corner = %v", v)
	}
	// Extrapolation beyond the grid continues the edge slope.
	if v := tab.Lookup(20, 0); math.Abs(v-20) > 1e-12 {
		t.Errorf("extrapolated = %v, want 20", v)
	}
	if v := tab.Lookup(-10, 0); math.Abs(v+10) > 1e-12 {
		t.Errorf("extrapolated low = %v, want -10", v)
	}
}

func TestTableCheckErrors(t *testing.T) {
	bad := []*Table2D{
		{SlewAxis: []float64{1}, LoadAxis: []float64{1, 2}, Vals: [][]float64{{1, 2}}},
		{SlewAxis: []float64{2, 1}, LoadAxis: []float64{1, 2}, Vals: [][]float64{{1, 2}, {3, 4}}},
		{SlewAxis: []float64{1, 2}, LoadAxis: []float64{2, 1}, Vals: [][]float64{{1, 2}, {3, 4}}},
		{SlewAxis: []float64{1, 2}, LoadAxis: []float64{1, 2}, Vals: [][]float64{{1, 2}}},
		{SlewAxis: []float64{1, 2}, LoadAxis: []float64{1, 2}, Vals: [][]float64{{1, 2}, {3}}},
	}
	for i, tab := range bad {
		if err := tab.Check(); err == nil {
			t.Errorf("bad table %d passed Check", i)
		}
	}
}

func TestDelayMonotoneInLoadAndDrive(t *testing.T) {
	th := Default28nm()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		k := rng.Intn(th.NumCorners())
		ci := rng.Intn(len(th.Cells))
		slew := 5 + rng.Float64()*300
		load := 1 + rng.Float64()*120
		c := th.Cells[ci]
		d1 := c.DelayPS(k, slew, load)
		d2 := c.DelayPS(k, slew, load*1.5)
		if d2 <= d1 {
			t.Fatalf("delay not increasing in load: %s corner %d", c.Name, k)
		}
		if ci+1 < len(th.Cells) {
			stronger := th.Cells[ci+1].DelayPS(k, slew, load)
			if stronger >= d1 {
				t.Fatalf("stronger cell not faster: %s vs %s corner %d load %.1f",
					th.Cells[ci+1].Name, c.Name, k, load)
			}
		}
	}
}

func TestSlewMonotoneInLoad(t *testing.T) {
	th := Default28nm()
	c := th.Cells[2]
	for k := range th.Corners {
		if c.OutSlewPS(k, 40, 60) <= c.OutSlewPS(k, 40, 20) {
			t.Errorf("slew not increasing in load at corner %d", k)
		}
	}
}

func TestCornerDelayOrderingInTables(t *testing.T) {
	th := Default28nm()
	c := th.CellByName("CKINVX4")
	if c == nil {
		t.Fatal("CKINVX4 missing")
	}
	d := make([]float64, 4)
	for k := range th.Corners {
		d[k] = c.DelayPS(k, 40, 20)
	}
	if !(d[1] > d[0] && d[0] > d[2] && d[2] > d[3]) {
		t.Errorf("table delays not corner-ordered: %v", d)
	}
}

func TestCellLookupAndSizing(t *testing.T) {
	th := Default28nm()
	if th.CellByName("nope") != nil {
		t.Error("unknown cell found")
	}
	if th.CellIndex("nope") != -1 {
		t.Error("unknown cell index")
	}
	x1 := th.Cells[0]
	x16 := th.Cells[len(th.Cells)-1]
	if th.DownSize(x1) != x1 {
		t.Error("DownSize below X1 should saturate")
	}
	if th.UpSize(x16) != x16 {
		t.Error("UpSize above X16 should saturate")
	}
	if th.UpSize(x1).Drive != 2 {
		t.Errorf("UpSize(X1) = %v", th.UpSize(x1).Name)
	}
	if th.DownSize(x16).Drive != 8 {
		t.Errorf("DownSize(X16) = %v", th.DownSize(x16).Name)
	}
	foreign := &Cell{Name: "ALIEN"}
	if th.UpSize(foreign) != foreign || th.DownSize(foreign) != foreign {
		t.Error("sizing of unknown cell should be identity")
	}
}

func TestWireRC(t *testing.T) {
	th := Default28nm()
	// c0/c1 are Cmax; c2/c3 Cmin.
	if !(th.WireC(0) > th.WireC(2)) {
		t.Error("Cmax wire cap should exceed Cmin")
	}
	if !(th.WireR(0) > th.WireR(2)) {
		t.Error("Cmax wire res should exceed Cmin (correlated)")
	}
	if th.WireC(0) != th.WireC(1) {
		t.Error("same BEOL corners should match")
	}
}

func TestSubCorners(t *testing.T) {
	th := Default28nm()
	view, err := th.SubCorners("c0", "c1", "c3")
	if err != nil {
		t.Fatal(err)
	}
	if err := view.Validate(); err != nil {
		t.Fatal(err)
	}
	if view.NumCorners() != 3 {
		t.Fatalf("view corners = %d", view.NumCorners())
	}
	if view.Corners[2].Name != "c3" {
		t.Errorf("view corner 2 = %s", view.Corners[2].Name)
	}
	// Index 2 of the view must alias the full tech's corner 3 tables.
	c := view.CellByName("CKINVX2")
	full := th.CellByName("CKINVX2")
	if c.DelayPS(2, 40, 20) != full.DelayPS(3, 40, 20) {
		t.Error("view table re-slicing wrong")
	}
	if _, err := th.SubCorners(); err == nil {
		t.Error("empty view did not error")
	}
	if _, err := th.SubCorners("cX"); err == nil {
		t.Error("unknown corner did not error")
	}
	if _, err := th.SubCorners("c1", "c0"); err == nil {
		t.Error("non-nominal-first view did not error")
	}
}

func TestAlphaEstimate(t *testing.T) {
	th := Default28nm()
	a0 := th.AlphaEstimate(0)
	if math.Abs(a0-1) > 1e-9 {
		t.Errorf("alpha(c0) = %v, want 1", a0)
	}
	a1 := th.AlphaEstimate(1)
	if a1 >= 1 {
		t.Errorf("alpha(c1) = %v, want < 1 (c1 slower)", a1)
	}
	a3 := th.AlphaEstimate(3)
	if a3 <= 1 {
		t.Errorf("alpha(c3) = %v, want > 1 (c3 faster)", a3)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	th := Default28nm()
	th.Cells[0], th.Cells[1] = th.Cells[1], th.Cells[0]
	if err := th.Validate(); err == nil {
		t.Error("drive-order violation not caught")
	}
	th = Default28nm()
	th.Cells[0].Delay = th.Cells[0].Delay[:1]
	if err := th.Validate(); err == nil {
		t.Error("missing corner tables not caught")
	}
	th = Default28nm()
	th.WireRPerUM = 0
	if err := th.Validate(); err == nil {
		t.Error("zero wire R not caught")
	}
	th = Default28nm()
	th.Nominal = 99
	if err := th.Validate(); err == nil {
		t.Error("bad nominal not caught")
	}
	empty := &Tech{}
	if err := empty.Validate(); err == nil {
		t.Error("empty tech not caught")
	}
}

func TestLowSensitivityVariant(t *testing.T) {
	th := Default28nm()
	low := th.LowSensitivityVariant(0.6)
	if err := low.Validate(); err != nil {
		t.Fatal(err)
	}
	c := th.CellByName("CKINVX4")
	lc := low.CellByName("CKINVX4")
	// Nominal-corner delay unchanged; c1/c0 ratio compressed toward 1.
	if math.Abs(c.DelayPS(0, 40, 20)-lc.DelayPS(0, 40, 20)) > 1e-9 {
		t.Error("nominal delay changed")
	}
	r0 := c.DelayPS(1, 40, 20) / c.DelayPS(0, 40, 20)
	r1 := lc.DelayPS(1, 40, 20) / lc.DelayPS(0, 40, 20)
	if !(r1 < r0 && r1 > 1) {
		t.Errorf("ratio not compressed: %v → %v", r0, r1)
	}
	// Clamping.
	full := th.LowSensitivityVariant(2)
	fc := full.CellByName("CKINVX4")
	if math.Abs(fc.DelayPS(1, 40, 20)-fc.DelayPS(0, 40, 20)) > 1e-9 {
		t.Error("full compression not corner-flat")
	}
	if th.LowSensitivityVariant(-1).CellByName("CKINVX4").DelayPS(1, 40, 20) != c.DelayPS(1, 40, 20) {
		t.Error("negative compression changed cells")
	}
}
