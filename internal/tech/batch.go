package tech

// Batched NLDM interpolation: one (slew, load) query answered for every
// corner of a cell in a single pass. SubCorners re-slices table pointers
// and characterization reuses one axis grid per cell, so in practice all
// corners of a cell share the same slew/load axes — the batch path then
// runs the binary-search locate once and only the bilinear blend per
// corner. Corners with private axes fall back to a per-corner locate.
// Either way every corner's result is computed with exactly the scalar
// Lookup's operations, so batch and scalar are bit-identical (enforced
// by batch_test.go).

// sameAxis reports whether two axes are the same backing array.
func sameAxis(a, b []float64) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// lookupBatch fills out[k] = tables[k].Lookup(slew, load), sharing the
// axis locate across tables with identical axes.
func lookupBatch(tables []*Table2D, slew, load float64, out []float64) {
	if len(tables) == 0 {
		return
	}
	t0 := tables[0]
	i0 := locate(t0.SlewAxis, slew)
	j0 := locate(t0.LoadAxis, load)
	for k, t := range tables {
		i, j := i0, j0
		if t != t0 && (!sameAxis(t.SlewAxis, t0.SlewAxis) || !sameAxis(t.LoadAxis, t0.LoadAxis)) {
			i = locate(t.SlewAxis, slew)
			j = locate(t.LoadAxis, load)
		}
		s0, s1 := t.SlewAxis[i], t.SlewAxis[i+1]
		l0, l1 := t.LoadAxis[j], t.LoadAxis[j+1]
		fs := (slew - s0) / (s1 - s0)
		fl := (load - l0) / (l1 - l0)
		v00 := t.Vals[i][j]
		v01 := t.Vals[i][j+1]
		v10 := t.Vals[i+1][j]
		v11 := t.Vals[i+1][j+1]
		out[k] = v00*(1-fs)*(1-fl) + v01*(1-fs)*fl + v10*fs*(1-fl) + v11*fs*fl
	}
}

// TableDelayBatchPS fills out[k] with the NLDM-interpolated gate delay
// at every corner for one (slew, load) query — bit-identical to calling
// TableDelayPS per corner, with the axis locate shared.
func (c *Cell) TableDelayBatchPS(slewIn, load float64, out []float64) {
	lookupBatch(c.Delay, slewIn, load, out)
}

// TableOutSlewBatchPS is the output-slew counterpart of
// TableDelayBatchPS.
func (c *Cell) TableOutSlewBatchPS(slewIn, load float64, out []float64) {
	lookupBatch(c.OutSlew, slewIn, load, out)
}
