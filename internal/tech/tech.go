// Package tech models the process technology the optimizer runs against: PVT
// corners, a clock-inverter library with NLDM-style (input-slew × load)
// delay/slew lookup tables per corner, and per-corner wire RC.
//
// The paper targets a foundry 28nm LP technology with four signoff corners
// (Table 3). No such library can ship with an open-source reproduction, so
// this package *characterizes* an equivalent synthetic library from an
// analytic driver model: delays are generated once onto NLDM grids, and from
// then on every consumer (golden timer, LUT characterization, estimators)
// sees only table interpolation — exactly the way a real flow consumes a
// Liberty file. The analytic generator is tuned so that corner-to-corner
// delay ratios show the same qualitative behaviour the paper exploits:
// gate-dominated stages scale differently across corners than wire-dominated
// stages (the spread of Figure 2), and the slow-voltage corner (c1) runs
// ≈1.8–2.5× slower than nominal.
//
// Units: time ps, distance µm, capacitance fF, resistance kΩ (kΩ·fF = ps).
package tech

import (
	"fmt"
	"math"
)

// Process is the global transistor-speed corner.
type Process int

// Process corners.
const (
	SS Process = iota // slow-slow
	TT                // typical
	FF                // fast-fast
)

// String implements fmt.Stringer.
func (p Process) String() string {
	switch p {
	case SS:
		return "ss"
	case TT:
		return "tt"
	case FF:
		return "ff"
	}
	return fmt.Sprintf("Process(%d)", int(p))
}

// BEOL is the back-end-of-line (interconnect) corner.
type BEOL int

// BEOL corners.
const (
	Ctyp BEOL = iota
	Cmax
	Cmin
)

// String implements fmt.Stringer.
func (b BEOL) String() string {
	switch b {
	case Ctyp:
		return "Ctyp"
	case Cmax:
		return "Cmax"
	case Cmin:
		return "Cmin"
	}
	return fmt.Sprintf("BEOL(%d)", int(b))
}

// Corner is one PVT+BEOL signoff corner (a row of the paper's Table 3).
type Corner struct {
	Name    string
	Process Process
	Voltage float64 // supply, V
	TempC   float64 // junction temperature, °C
	BEOL    BEOL
}

// String implements fmt.Stringer.
func (c Corner) String() string {
	return fmt.Sprintf("%s(%s,%.2fV,%g°C,%s)", c.Name, c.Process, c.Voltage, c.TempC, c.BEOL)
}

// Table2D is an NLDM-style two-dimensional lookup table indexed by input
// slew (rows) and output load (cols). Axes are strictly increasing.
type Table2D struct {
	SlewAxis []float64 // ps
	LoadAxis []float64 // fF
	Vals     [][]float64
}

// locate returns the lower interval index for x on axis, clamped so that
// [i, i+1] is always a valid interval; values outside the axis range are
// linearly extrapolated from the edge interval (Liberty-style).
func locate(axis []float64, x float64) int {
	// Binary search for the interval.
	lo, hi := 0, len(axis)-2
	if x <= axis[0] {
		return 0
	}
	if x >= axis[len(axis)-1] {
		return len(axis) - 2
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if axis[mid] <= x {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Lookup bilinearly interpolates (and edge-extrapolates) the table.
func (t *Table2D) Lookup(slew, load float64) float64 {
	i := locate(t.SlewAxis, slew)
	j := locate(t.LoadAxis, load)
	s0, s1 := t.SlewAxis[i], t.SlewAxis[i+1]
	l0, l1 := t.LoadAxis[j], t.LoadAxis[j+1]
	fs := (slew - s0) / (s1 - s0)
	fl := (load - l0) / (l1 - l0)
	v00 := t.Vals[i][j]
	v01 := t.Vals[i][j+1]
	v10 := t.Vals[i+1][j]
	v11 := t.Vals[i+1][j+1]
	return v00*(1-fs)*(1-fl) + v01*(1-fs)*fl + v10*fs*(1-fl) + v11*fs*fl
}

// Check validates table shape and axis monotonicity.
func (t *Table2D) Check() error {
	if len(t.SlewAxis) < 2 || len(t.LoadAxis) < 2 {
		return fmt.Errorf("tech: table axes need ≥2 points, got %d×%d", len(t.SlewAxis), len(t.LoadAxis))
	}
	for i := 1; i < len(t.SlewAxis); i++ {
		if t.SlewAxis[i] <= t.SlewAxis[i-1] {
			return fmt.Errorf("tech: slew axis not increasing at %d", i)
		}
	}
	for j := 1; j < len(t.LoadAxis); j++ {
		if t.LoadAxis[j] <= t.LoadAxis[j-1] {
			return fmt.Errorf("tech: load axis not increasing at %d", j)
		}
	}
	if len(t.Vals) != len(t.SlewAxis) {
		return fmt.Errorf("tech: %d value rows for %d slew points", len(t.Vals), len(t.SlewAxis))
	}
	for i, row := range t.Vals {
		if len(row) != len(t.LoadAxis) {
			return fmt.Errorf("tech: row %d has %d cols, want %d", i, len(row), len(t.LoadAxis))
		}
	}
	return nil
}

// Cell is a clock inverter with per-corner NLDM tables. Clock buffers in this
// project are inverter pairs (paper §4.1); a Cell models one inverter.
type Cell struct {
	Name  string
	Drive int     // relative drive strength: 1, 2, 4, 8, 16
	InCap float64 // input pin capacitance, fF
	Area  float64 // cell area, µm²
	// Delay and OutSlew are indexed by corner index within the owning Tech.
	Delay   []*Table2D
	OutSlew []*Table2D
	// kFactor is the per-corner analytic speed multiplier, retained so the
	// golden timer can evaluate the underlying model exactly.
	kFactor []float64
}

// DelayPS returns the golden ("SPICE-accurate") gate delay at the corner:
// the exact analytic model when available, table interpolation otherwise.
func (c *Cell) DelayPS(corner int, slewIn, load float64) float64 {
	if corner < len(c.kFactor) {
		return analyticDelay(c.kFactor[corner], c.Drive, slewIn, load)
	}
	return c.Delay[corner].Lookup(slewIn, load)
}

// OutSlewPS returns the golden output slew at the corner (exact model when
// available).
func (c *Cell) OutSlewPS(corner int, slewIn, load float64) float64 {
	if corner < len(c.kFactor) {
		return analyticSlew(c.kFactor[corner], c.Drive, slewIn, load)
	}
	return c.OutSlew[corner].Lookup(slewIn, load)
}

// TableDelayPS returns the NLDM-interpolated gate delay — what a
// Liberty-consuming estimator sees. It differs from DelayPS by the
// interpolation error of the characterization grid.
func (c *Cell) TableDelayPS(corner int, slewIn, load float64) float64 {
	return c.Delay[corner].Lookup(slewIn, load)
}

// TableOutSlewPS returns the NLDM-interpolated output slew.
func (c *Cell) TableOutSlewPS(corner int, slewIn, load float64) float64 {
	return c.OutSlew[corner].Lookup(slewIn, load)
}

// Tech bundles everything the flow needs to know about the process.
type Tech struct {
	Name    string
	Corners []Corner
	Nominal int // index of the nominal corner c0

	Cells []*Cell // ascending drive strength

	// Wire RC at the typical BEOL corner; per-corner values via WireR/WireC.
	WireRPerUM float64 // kΩ/µm
	WireCPerUM float64 // fF/µm

	SinkCap float64 // FF clock-pin capacitance, fF

	// Design rules applied during CTS and ECO, at the nominal corner.
	MaxLoad float64 // fF
	MaxSlew float64 // ps

	// Placement geometry for the legalizer.
	SiteW float64 // µm
	RowH  float64 // µm

	ClockFreqGHz float64 // for power reporting
}

// beolFactors returns (rScale, cScale) for a BEOL corner.
func beolFactors(b BEOL) (rs, cs float64) {
	switch b {
	case Cmax:
		return 1.05, 1.15
	case Cmin:
		return 0.95, 0.85
	default:
		return 1, 1
	}
}

// WireR returns wire resistance per µm at corner k.
func (t *Tech) WireR(k int) float64 {
	rs, _ := beolFactors(t.Corners[k].BEOL)
	return t.WireRPerUM * rs
}

// WireC returns wire capacitance per µm at corner k.
func (t *Tech) WireC(k int) float64 {
	_, cs := beolFactors(t.Corners[k].BEOL)
	return t.WireCPerUM * cs
}

// NumCorners returns the number of analysis corners.
func (t *Tech) NumCorners() int { return len(t.Corners) }

// CellByName returns the named cell, or nil.
func (t *Tech) CellByName(name string) *Cell {
	for _, c := range t.Cells {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// CellIndex returns the index of the named cell in the drive-ordered list,
// or -1.
func (t *Tech) CellIndex(name string) int {
	for i, c := range t.Cells {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// UpSize returns the next-stronger cell, or the same cell at the top of the
// range ("one-step up sizing" of Table 2).
func (t *Tech) UpSize(c *Cell) *Cell {
	i := t.CellIndex(c.Name)
	if i < 0 || i == len(t.Cells)-1 {
		return c
	}
	return t.Cells[i+1]
}

// DownSize returns the next-weaker cell, or the same cell at the bottom.
func (t *Tech) DownSize(c *Cell) *Cell {
	i := t.CellIndex(c.Name)
	if i <= 0 {
		return c
	}
	return t.Cells[i-1]
}

// DelayFactor is the analytic corner speed multiplier used during
// characterization: the composite of process, voltage and temperature
// effects relative to a hypothetical TT/0.9V/25°C device.
func DelayFactor(c Corner) float64 {
	var proc float64
	var tempCo float64
	switch c.Process {
	case SS:
		proc = 1.30
		tempCo = -0.0003 // temperature inversion at the slow/low-V corner
	case FF:
		proc = 0.80
		tempCo = +0.0003
	default:
		proc = 1.0
		tempCo = +0.0001
	}
	const (
		vRef  = 0.90
		vth   = 0.32
		gamma = 1.9
	)
	volt := math.Pow((vRef-vth)/(c.Voltage-vth), gamma)
	temp := 1 + tempCo*(c.TempC-25)
	return proc * volt * temp
}

// characterization constants for the analytic inverter model.
const (
	baseDriveRes  = 2.6  // kΩ for the X1 inverter at the reference corner
	baseIntrinsic = 9.0  // ps intrinsic delay at the reference corner
	baseInCap     = 1.05 // fF input cap of X1
	baseParCap    = 0.55 // fF output parasitic of X1
	slewSens      = 0.11 // delay sensitivity to input slew (dimensionless)
	slewGain      = 1.9  // output slew vs Rdrv·Cload
	slewFloor     = 4.5  // ps minimum output slew
	crossTerm     = 7e-4 // mild slew×load nonlinearity, ps/(ps·fF)
	baseAreaX1    = 1.6  // µm² for X1 (two-inverter pair footprint is 2×)
	slewSat       = 120  // ps half-saturation of the slew→drive interaction
	sqrtLoadTerm  = 1.3  // ps·√x weight of the sub-linear load response
)

// analyticDelay is the "silicon" behind the library: the golden timer
// evaluates it exactly, while the NLDM tables sample it on the
// characterization grid and downstream estimators interpolate those tables.
// The saturating slew interaction and the sub-linear load term make the
// response genuinely nonlinear, so table interpolation carries the small
// systematic error the paper's ML models absorb ("the interpolated delay
// values do not always match those from the golden timer's analysis",
// §4.2 / [8]).
func analyticDelay(k float64, drive int, slewIn, load float64) float64 {
	x := float64(drive)
	r := baseDriveRes / x
	cl := load + baseParCap*x
	slewFac := slewIn / (slewIn + slewSat)
	d := k*(baseIntrinsic+r*cl*0.69*(1+0.22*slewFac)) +
		slewSens*slewIn +
		crossTerm*slewIn*cl/x +
		k*sqrtLoadTerm*math.Sqrt(cl/x)
	return d
}

// analyticSlew is the generator behind the output-slew tables.
func analyticSlew(k float64, drive int, slewIn, load float64) float64 {
	x := float64(drive)
	r := baseDriveRes / x
	cl := load + baseParCap*x
	slewFac := slewIn / (slewIn + slewSat)
	s := k*(slewGain*r*cl)*(1+0.12*slewFac) + 0.10*slewIn + slewFloor + k*0.8*math.Sqrt(cl/x)
	return s
}

// characterizeCell builds per-corner NLDM tables for one drive strength.
func characterizeCell(drive int, corners []Corner) *Cell {
	slews := []float64{5, 10, 20, 40, 80, 160, 320, 640}
	loads := []float64{0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256}
	c := &Cell{
		Name:  fmt.Sprintf("CKINVX%d", drive),
		Drive: drive,
		InCap: baseInCap * float64(drive),
		Area:  baseAreaX1 * float64(drive),
	}
	for _, cor := range corners {
		k := DelayFactor(cor)
		c.kFactor = append(c.kFactor, k)
		dt := &Table2D{SlewAxis: slews, LoadAxis: loads}
		st := &Table2D{SlewAxis: slews, LoadAxis: loads}
		for _, s := range slews {
			var drow, srow []float64
			for _, l := range loads {
				drow = append(drow, analyticDelay(k, drive, s, l))
				srow = append(srow, analyticSlew(k, drive, s, l))
			}
			dt.Vals = append(dt.Vals, drow)
			st.Vals = append(st.Vals, srow)
		}
		c.Delay = append(c.Delay, dt)
		c.OutSlew = append(c.OutSlew, st)
	}
	return c
}

// Table3Corners returns the paper's Table 3: the four 28nm LP signoff
// corners. c0 is the nominal corner.
func Table3Corners() []Corner {
	return []Corner{
		{Name: "c0", Process: SS, Voltage: 0.90, TempC: -25, BEOL: Cmax},
		{Name: "c1", Process: SS, Voltage: 0.75, TempC: -25, BEOL: Cmax},
		{Name: "c2", Process: FF, Voltage: 1.10, TempC: 125, BEOL: Cmin},
		{Name: "c3", Process: FF, Voltage: 1.32, TempC: 125, BEOL: Cmin},
	}
}

// Default28nm characterizes the full synthetic 28nm-LP-flavoured technology:
// four corners, five clock inverter sizes (X1..X16), wire RC, design rules
// and placement geometry.
func Default28nm() *Tech {
	corners := Table3Corners()
	t := &Tech{
		Name:         "synth28lp",
		Corners:      corners,
		Nominal:      0,
		WireRPerUM:   0.0021, // 2.1 Ω/µm
		WireCPerUM:   0.19,   // fF/µm
		SinkCap:      0.85,
		MaxLoad:      90,
		MaxSlew:      220,
		SiteW:        0.19,
		RowH:         1.2,
		ClockFreqGHz: 1.0,
	}
	for _, d := range []int{1, 2, 4, 8, 16} {
		t.Cells = append(t.Cells, characterizeCell(d, corners))
	}
	return t
}

// SubCorners returns a shallow technology view restricted to the named
// corners (e.g. {c0,c1,c3} for CLS1 or {c0,c1,c2} for CLS2). Cell tables are
// re-sliced so corner index i in the view corresponds to names[i]. The
// nominal corner must be first.
func (t *Tech) SubCorners(names ...string) (*Tech, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("tech: SubCorners needs at least one corner")
	}
	idx := make([]int, len(names))
	for i, n := range names {
		idx[i] = -1
		for j, c := range t.Corners {
			if c.Name == n {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("tech: unknown corner %q", n)
		}
	}
	if idx[0] != t.Nominal {
		return nil, fmt.Errorf("tech: first corner of a view must be the nominal corner %s", t.Corners[t.Nominal].Name)
	}
	view := *t
	view.Corners = make([]Corner, len(idx))
	for i, j := range idx {
		view.Corners[i] = t.Corners[j]
	}
	view.Nominal = 0
	view.Cells = make([]*Cell, len(t.Cells))
	for ci, c := range t.Cells {
		nc := &Cell{Name: c.Name, Drive: c.Drive, InCap: c.InCap, Area: c.Area}
		for _, j := range idx {
			nc.Delay = append(nc.Delay, c.Delay[j])
			nc.OutSlew = append(nc.OutSlew, c.OutSlew[j])
			if j < len(c.kFactor) {
				nc.kFactor = append(nc.kFactor, c.kFactor[j])
			}
		}
		view.Cells[ci] = nc
	}
	return &view, nil
}

// AlphaEstimate returns a technology-derived normalization factor αk for
// corner k with respect to the nominal corner: the ratio of a reference
// buffer stage delay at nominal over corner k (so αk·delay(ck) ≈ delay(c0)).
// The framework refines α from measured skews; this is the "technology
// information" fallback the paper mentions.
func (t *Tech) AlphaEstimate(k int) float64 {
	c := t.Cells[len(t.Cells)/2]
	const refSlew, refLoad = 40, 24
	d0 := c.DelayPS(t.Nominal, refSlew, refLoad)
	dk := c.DelayPS(k, refSlew, refLoad)
	if dk == 0 {
		return 1
	}
	return d0 / dk
}

// Validate checks internal consistency of the technology.
func (t *Tech) Validate() error {
	if len(t.Corners) == 0 {
		return fmt.Errorf("tech: no corners")
	}
	if t.Nominal < 0 || t.Nominal >= len(t.Corners) {
		return fmt.Errorf("tech: nominal corner index %d out of range", t.Nominal)
	}
	if len(t.Cells) == 0 {
		return fmt.Errorf("tech: no cells")
	}
	for i, c := range t.Cells {
		if len(c.Delay) != len(t.Corners) || len(c.OutSlew) != len(t.Corners) {
			return fmt.Errorf("tech: cell %s has tables for %d corners, want %d", c.Name, len(c.Delay), len(t.Corners))
		}
		if i > 0 && c.Drive <= t.Cells[i-1].Drive {
			return fmt.Errorf("tech: cells not in ascending drive order at %s", c.Name)
		}
		for k := range t.Corners {
			if err := c.Delay[k].Check(); err != nil {
				return fmt.Errorf("cell %s corner %d delay: %w", c.Name, k, err)
			}
			if err := c.OutSlew[k].Check(); err != nil {
				return fmt.Errorf("cell %s corner %d slew: %w", c.Name, k, err)
			}
		}
	}
	if t.WireRPerUM <= 0 || t.WireCPerUM <= 0 {
		return fmt.Errorf("tech: non-positive wire RC")
	}
	return nil
}

// LowSensitivityVariant derives a technology whose cells are less sensitive
// to corner variation: each cell's per-corner speed factors are compressed
// toward the nominal corner's by the given factor (0 = no change, 1 = fully
// corner-insensitive). This implements the paper's future-work item (iii) —
// "new library cells whose delay and slew are less sensitive to corner
// variation so as to enable fine-grained ECOs" — as a what-if library for
// ablation studies. Tables are re-characterized from the compressed factors.
func (t *Tech) LowSensitivityVariant(compress float64) *Tech {
	if compress < 0 {
		compress = 0
	}
	if compress > 1 {
		compress = 1
	}
	v := *t
	v.Name = t.Name + "-lowsens"
	v.Cells = make([]*Cell, len(t.Cells))
	slews := t.Cells[0].Delay[0].SlewAxis
	loads := t.Cells[0].Delay[0].LoadAxis
	for ci, c := range t.Cells {
		nc := &Cell{Name: c.Name, Drive: c.Drive, InCap: c.InCap, Area: c.Area}
		kNom := c.kFactor[t.Nominal]
		for k := range t.Corners {
			kf := c.kFactor[k] + compress*(kNom-c.kFactor[k])
			nc.kFactor = append(nc.kFactor, kf)
			dt := &Table2D{SlewAxis: slews, LoadAxis: loads}
			st := &Table2D{SlewAxis: slews, LoadAxis: loads}
			for _, s := range slews {
				var drow, srow []float64
				for _, l := range loads {
					drow = append(drow, analyticDelay(kf, c.Drive, s, l))
					srow = append(srow, analyticSlew(kf, c.Drive, s, l))
				}
				dt.Vals = append(dt.Vals, drow)
				st.Vals = append(st.Vals, srow)
			}
			nc.Delay = append(nc.Delay, dt)
			nc.OutSlew = append(nc.OutSlew, st)
		}
		v.Cells[ci] = nc
	}
	return &v
}
