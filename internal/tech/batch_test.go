package tech

import (
	"math"
	"testing"
)

// TestBatchLookupBitIdentical sweeps queries across and beyond the axis
// range for every cell of the default technology (and a SubCorners view,
// which shares table pointers) and asserts the batched interpolation is
// bitwise equal to the scalar per-corner path.
func TestBatchLookupBitIdentical(t *testing.T) {
	base := Default28nm()
	view, err := base.SubCorners("c0", "c1", "c3")
	if err != nil {
		t.Fatal(err)
	}
	slews := []float64{0.1, 5, 12.5, 40, 333.3, 640, 2000}
	loads := []float64{0.1, 0.5, 3.7, 64, 255.9, 256, 1e4}
	for _, th := range []*Tech{base, view} {
		K := th.NumCorners()
		out := make([]float64, K)
		for _, c := range th.Cells {
			for _, s := range slews {
				for _, l := range loads {
					c.TableDelayBatchPS(s, l, out)
					for k := 0; k < K; k++ {
						want := c.TableDelayPS(k, s, l)
						if math.Float64bits(out[k]) != math.Float64bits(want) {
							t.Fatalf("%s delay corner %d at (%g,%g): batch %v scalar %v",
								c.Name, k, s, l, out[k], want)
						}
					}
					c.TableOutSlewBatchPS(s, l, out)
					for k := 0; k < K; k++ {
						want := c.TableOutSlewPS(k, s, l)
						if math.Float64bits(out[k]) != math.Float64bits(want) {
							t.Fatalf("%s slew corner %d at (%g,%g): batch %v scalar %v",
								c.Name, k, s, l, out[k], want)
						}
					}
				}
			}
		}
	}
}

// TestBatchLookupPrivateAxes forces the fallback path: tables whose axes
// are equal by value but not by identity must still match scalar.
func TestBatchLookupPrivateAxes(t *testing.T) {
	mk := func() *Table2D {
		return &Table2D{
			SlewAxis: []float64{5, 10, 20},
			LoadAxis: []float64{1, 2, 4, 8},
			Vals: [][]float64{
				{1, 2, 3, 4},
				{2, 4, 6, 8},
				{3, 6, 9, 12},
			},
		}
	}
	a, b := mk(), mk()
	b.Vals[1][1] = 17
	out := make([]float64, 2)
	for _, q := range [][2]float64{{7, 1.5}, {0, 0}, {100, 100}, {12, 3}} {
		lookupBatch([]*Table2D{a, b}, q[0], q[1], out)
		for k, tab := range []*Table2D{a, b} {
			want := tab.Lookup(q[0], q[1])
			if math.Float64bits(out[k]) != math.Float64bits(want) {
				t.Fatalf("table %d at %v: batch %v scalar %v", k, q, out[k], want)
			}
		}
	}
}

// TestBatchLookupZeroAlloc pins the batch path to zero allocations — the
// reason it exists.
func TestBatchLookupZeroAlloc(t *testing.T) {
	th := Default28nm()
	c := th.Cells[2]
	out := make([]float64, th.NumCorners())
	allocs := testing.AllocsPerRun(100, func() {
		c.TableDelayBatchPS(23.5, 17.2, out)
		c.TableOutSlewBatchPS(23.5, 17.2, out)
	})
	if allocs != 0 {
		t.Fatalf("batch lookup allocates %.1f/op, want 0", allocs)
	}
}
