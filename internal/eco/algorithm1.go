package eco

import (
	"fmt"
	"math"

	"skewvar/internal/ctree"
	"skewvar/internal/geom"
	"skewvar/internal/legalize"
	"skewvar/internal/lut"
	"skewvar/internal/tech"
)

// Rebuilder implements the paper's Algorithm 1 (LP-guided ECO flow): for
// every arc with an LP delay target, remove the existing inverter pairs,
// search the characterized LUTs for the (gate size, spacing, pair count)
// whose estimated per-corner delays minimize the combined error of lines
// 8–13, and re-insert uniformly placed pairs with a U-shaped routing detour
// when the solution requires more wire than the direct run.
type Rebuilder struct {
	T    *tech.Tech
	Char *lut.Char
	Lg   *legalize.Legalizer

	// SpacingStride subsamples the LUT spacing grid during the search (1 =
	// every characterized spacing; 3 = every 15µm). Higher is faster.
	SpacingStride int
}

// NewRebuilder returns a Rebuilder with default search granularity.
func NewRebuilder(t *tech.Tech, ch *lut.Char, lg *legalize.Legalizer) *Rebuilder {
	return &Rebuilder{T: t, Char: ch, Lg: lg, SpacingStride: 2}
}

// Solution is a chosen (size, spacing, count) inverter-pair insertion.
type Solution struct {
	CellIdx   int
	SpacingUM float64 // effective (possibly stretched) spacing
	Pairs     int
	DetourUM  float64 // total extra wire vs. the direct run
	Err       float64 // Algorithm-1 combined error
	Est       []float64
}

// endLoad returns the input capacitance presented by an arc's bottom anchor.
func (r *Rebuilder) endLoad(tr *ctree.Tree, bottom ctree.NodeID) float64 {
	n := tr.Node(bottom)
	switch n.Kind {
	case ctree.KindSink:
		return r.T.SinkCap
	case ctree.KindBuffer, ctree.KindSource:
		if c := r.T.CellByName(n.CellName); c != nil {
			return c.InCap
		}
	}
	// Branch tap: approximate with the typical downstream pin load.
	return 3.0
}

// Estimate predicts the rebuilt arc delay at corner k for a candidate
// (cell p, effective spacing q, u pairs) over a direct length with the given
// end load — LUTdetail for the first and last stages, LUTuniform for the
// middle (Figure 3).
func (r *Rebuilder) Estimate(p int, q float64, u, k int, endLoad float64) float64 {
	cell := r.T.Cells[p]
	if u == 0 {
		d, _ := r.Char.WireDelay(k, q, endLoad)
		return d
	}
	// Wire from the top anchor to the first pair.
	first, _ := r.Char.WireDelay(k, q, cell.InCap)
	slew := r.Char.SteadySlew(p, nearestSpacingIdx(q), k)
	total := first
	if u == 1 {
		d, _ := r.Char.DetailStage(p, q, k, slew, endLoad)
		return total + d
	}
	dFirst, slewOut := r.Char.DetailStage(p, q, k, slew, cell.InCap)
	total += dFirst
	if u > 2 {
		total += float64(u-2) * r.Char.UniformAt(p, q, k)
	}
	dLast, _ := r.Char.DetailStage(p, q, k, slewOut, endLoad)
	return total + dLast
}

func nearestSpacingIdx(q float64) int {
	i := int((q - lut.SpacingMin) / lut.SpacingStep)
	max := int((lut.SpacingMax - lut.SpacingMin) / lut.SpacingStep)
	if i < 0 {
		return 0
	}
	if i > max {
		return max
	}
	return i
}

// Select runs the Algorithm-1 search (lines 3–18) for one arc: it scans gate
// sizes × spacings, estimates the required pair count from LUTuniform at the
// nominal corner, probes uest±2, and returns the minimum-error solution.
func (r *Rebuilder) Select(directUM float64, endLoad float64, dlp []float64) (*Solution, error) {
	if len(dlp) != r.T.NumCorners() {
		return nil, fmt.Errorf("eco: %d delay targets for %d corners", len(dlp), r.T.NumCorners())
	}
	stride := r.SpacingStride
	if stride < 1 {
		stride = 1
	}
	best := &Solution{Err: math.Inf(1)}
	errOf := func(est []float64) float64 {
		var err float64
		for k := range dlp {
			err += math.Abs(est[k] - dlp[k])
		}
		for k := range dlp {
			for k2 := k + 1; k2 < len(dlp); k2++ {
				err += math.Abs((est[k] - est[k2]) - (dlp[k] - dlp[k2]))
			}
		}
		return err
	}
	consider := func(p int, q float64, u int) {
		// u pairs ⇒ u+1 segments; the wire must at least cover the direct
		// run.
		eff := q
		if minSpacing := directUM / float64(u+1); eff < minSpacing {
			eff = minSpacing
		}
		if eff > 2*lut.SpacingMax {
			return // not characterized; unreachable spacing
		}
		est := make([]float64, len(dlp))
		for k := range dlp {
			est[k] = r.Estimate(p, eff, u, k, endLoad)
		}
		if err := errOf(est); err < best.Err {
			best = &Solution{CellIdx: p, SpacingUM: eff, Pairs: u,
				DetourUM: eff*float64(u+1) - directUM, Err: err, Est: est}
		}
	}
	// Bare-wire options (full buffer removal), with optional snaking.
	for _, f := range []float64{1, 1.15, 1.3, 1.5} {
		length := directUM * f
		est := make([]float64, len(dlp))
		for k := range dlp {
			est[k] = r.Estimate(0, length, 0, k, endLoad)
		}
		if err := errOf(est); err < best.Err {
			best = &Solution{CellIdx: 0, SpacingUM: length, Pairs: 0,
				DetourUM: length - directUM, Err: err, Est: est}
		}
	}
	for p := range r.T.Cells {
		for qi := 0; qi < len(r.Char.Spacings); qi += stride {
			q := r.Char.Spacings[qi]
			uniform := r.Char.Uniform(p, qi, r.T.Nominal)
			if uniform <= 0 {
				continue
			}
			uest := int(math.Round(dlp[r.T.Nominal] / uniform))
			lo := uest - 2
			if lo < 1 {
				lo = 1
			}
			for u := lo; u <= uest+2 && u <= 64; u++ {
				consider(p, q, u)
			}
		}
	}
	if math.IsInf(best.Err, 1) {
		return nil, fmt.Errorf("eco: no feasible insertion for arc (direct %.1fµm)", directUM)
	}
	return best, nil
}

// RebuildArc applies a selected solution to the tree: removes the arc's
// interior chain, inserts the chosen pairs uniformly along the direct run
// with the detour spread evenly over the segments, legal-snaps the new
// buffers, and resets the bottom anchor's detour share (lines 19–21). It
// returns the nodes whose electrical context changed (for incremental
// re-timing).
func (r *Rebuilder) RebuildArc(tr *ctree.Tree, arc *ctree.Arc, sol *Solution) ([]ctree.NodeID, error) {
	top := tr.Node(arc.Top)
	bottom := tr.Node(arc.Bottom)
	if top == nil || bottom == nil {
		return nil, fmt.Errorf("eco: stale arc")
	}
	for _, id := range arc.Interior {
		if err := tr.RemoveNode(id); err != nil {
			return nil, fmt.Errorf("eco: removing interior node %d: %w", id, err)
		}
	}
	u := sol.Pairs
	segDetour := sol.DetourUM / float64(u+1)
	if u == 0 {
		bottom.Detour = sol.DetourUM
		return []ctree.NodeID{arc.Top, arc.Bottom}, nil
	}
	cell := r.T.Cells[sol.CellIdx]
	// Detach bottom from top; rebuild the chain.
	for i, c := range top.Children {
		if c == arc.Bottom {
			top.Children = append(top.Children[:i], top.Children[i+1:]...)
			break
		}
	}
	dirty := []ctree.NodeID{arc.Top, arc.Bottom}
	cur := arc.Top
	for i := 1; i <= u; i++ {
		f := float64(i) / float64(u+1)
		loc := geom.Pt(
			top.Loc.X+(bottom.Loc.X-top.Loc.X)*f,
			top.Loc.Y+(bottom.Loc.Y-top.Loc.Y)*f,
		)
		b := tr.AddNode(ctree.KindBuffer, r.Lg.Snap(loc), cell.Name, cur)
		b.Detour = segDetour
		dirty = append(dirty, b.ID)
		cur = b.ID
	}
	bottom.Parent = cur
	bottom.Detour = segDetour
	tr.Node(cur).Children = append(tr.Node(cur).Children, arc.Bottom)
	return dirty, nil
}
