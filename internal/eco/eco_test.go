package eco

import (
	"math"
	"testing"

	"skewvar/internal/ctree"
	"skewvar/internal/geom"
	"skewvar/internal/legalize"
	"skewvar/internal/lut"
	"skewvar/internal/sta"
	"skewvar/internal/tech"
)

var (
	sharedTech *tech.Tech
	sharedChar *lut.Char
)

func env(t *testing.T) (*tech.Tech, *lut.Char, *legalize.Legalizer) {
	t.Helper()
	if sharedTech == nil {
		sharedTech = tech.Default28nm()
		sharedChar = lut.Characterize(sharedTech)
	}
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(2000, 2000))
	return sharedTech, sharedChar, legalize.New(die, sharedTech.SiteW, sharedTech.RowH)
}

// chainTree: source → b1 → b2 → sink, all on a line.
func chainTree() (*ctree.Tree, []ctree.NodeID) {
	tr := ctree.NewTree(geom.Pt(0, 500), "CKINVX16")
	b1 := tr.AddNode(ctree.KindBuffer, geom.Pt(150, 500), "CKINVX4", tr.Source)
	b2 := tr.AddNode(ctree.KindBuffer, geom.Pt(300, 500), "CKINVX4", b1.ID)
	s := tr.AddNode(ctree.KindSink, geom.Pt(450, 500), "", b2.ID)
	return tr, []ctree.NodeID{b1.ID, b2.ID, s.ID}
}

func TestMoveTypeString(t *testing.T) {
	if TypeI.String() != "I" || TypeII.String() != "II" || TypeIII.String() != "III" {
		t.Error("move type strings")
	}
	if MoveType(9).String() == "" {
		t.Error("unknown type empty")
	}
	m := Move{Type: TypeI, Buffer: 1, DX: 10, SizeStep: 1}
	if m.String() == "" {
		t.Error("move string empty")
	}
	if (Move{Type: TypeII}).String() == "" || (Move{Type: TypeIII}).String() == "" {
		t.Error("move strings empty")
	}
}

func TestEnumerateTypeIAndII(t *testing.T) {
	th, _, _ := env(t)
	tr, ids := chainTree()
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(2000, 2000))
	moves := Enumerate(tr, th, ids[0], die)
	var nI, nII, nIII int
	for _, m := range moves {
		switch m.Type {
		case TypeI:
			nI++
		case TypeII:
			nII++
		case TypeIII:
			nIII++
		}
	}
	// Type I: 8 dirs × 3 steps + 2 pure sizings = 26.
	if nI != 26 {
		t.Errorf("Type I count = %d, want 26", nI)
	}
	// b1 has one buffer child (b2): 8 dirs × 2 sizings = 16.
	if nII != 16 {
		t.Errorf("Type II count = %d, want 16", nII)
	}
	// No same-level alternative drivers exist.
	if nIII != 0 {
		t.Errorf("Type III count = %d, want 0", nIII)
	}
}

func TestEnumerateBoundaryClipping(t *testing.T) {
	th, _, _ := env(t)
	tr, ids := chainTree()
	// A die so tight every displacement leaves it.
	die := geom.NewRect(geom.Pt(149, 499), geom.Pt(151, 501))
	moves := Enumerate(tr, th, ids[0], die)
	for _, m := range moves {
		if m.Type == TypeI && (m.DX != 0 || m.DY != 0) {
			t.Errorf("off-die displacement enumerated: %v", m)
		}
	}
}

func TestEnumerateSizeSaturation(t *testing.T) {
	th, _, _ := env(t)
	tr := ctree.NewTree(geom.Pt(0, 0), "CKINVX16")
	b := tr.AddNode(ctree.KindBuffer, geom.Pt(100, 0), "CKINVX16", tr.Source) // top size
	tr.AddNode(ctree.KindSink, geom.Pt(200, 0), "", b.ID)
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(2000, 2000))
	for _, m := range Enumerate(tr, th, b.ID, die) {
		if m.Type == TypeI && m.SizeStep > 0 {
			t.Error("up-size enumerated at max size")
		}
	}
	if ms := Enumerate(tr, th, tr.Source, die); ms != nil {
		t.Error("moves enumerated for the source")
	}
	if ms := Enumerate(tr, th, ctree.NodeID(99), die); ms != nil {
		t.Error("moves enumerated for a missing node")
	}
}

func TestEnumerateTypeIII(t *testing.T) {
	th, _, _ := env(t)
	// Two leaf buffers at the same level, close together, each with sinks.
	tr := ctree.NewTree(geom.Pt(0, 0), "CKINVX16")
	top := tr.AddNode(ctree.KindBuffer, geom.Pt(100, 0), "CKINVX8", tr.Source)
	la := tr.AddNode(ctree.KindBuffer, geom.Pt(200, 10), "CKINVX4", top.ID)
	lb := tr.AddNode(ctree.KindBuffer, geom.Pt(200, -10), "CKINVX4", top.ID)
	sa := tr.AddNode(ctree.KindSink, geom.Pt(220, 10), "", la.ID)
	tr.AddNode(ctree.KindSink, geom.Pt(220, -10), "", lb.ID)
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(2000, 2000))
	moves := Enumerate(tr, th, la.ID, die)
	var found bool
	for _, m := range moves {
		if m.Type == TypeIII && m.Child == sa.ID && m.NewDrv == lb.ID {
			found = true
		}
	}
	if !found {
		t.Error("expected Type III reassigning sa to lb")
	}
}

func TestApplyMoves(t *testing.T) {
	th, _, lg := env(t)
	tr, ids := chainTree()
	// Type I: displace + upsize.
	if err := Apply(tr, th, lg, Move{Type: TypeI, Buffer: ids[0], DX: 10, DY: -10, SizeStep: 1}); err != nil {
		t.Fatal(err)
	}
	b1 := tr.Node(ids[0])
	if b1.CellName != "CKINVX8" {
		t.Errorf("cell = %s", b1.CellName)
	}
	if math.Abs(b1.Loc.X-160) > 0.5 || math.Abs(b1.Loc.Y-490) > 1.3 {
		t.Errorf("loc = %v", b1.Loc)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Type II: child downsize.
	if err := Apply(tr, th, lg, Move{Type: TypeII, Buffer: ids[0], Child: ids[1], SizeStep: -1}); err != nil {
		t.Fatal(err)
	}
	if tr.Node(ids[1]).CellName != "CKINVX2" {
		t.Errorf("child cell = %s", tr.Node(ids[1]).CellName)
	}
	// Errors.
	if err := Apply(tr, th, lg, Move{Type: TypeI, Buffer: 99}); err == nil {
		t.Error("missing buffer accepted")
	}
	if err := Apply(tr, th, lg, Move{Type: MoveType(9), Buffer: ids[0]}); err == nil {
		t.Error("bad type accepted")
	}
	if err := Apply(tr, th, lg, Move{Type: TypeII, Buffer: ids[0], Child: ids[2], SizeStep: 1}); err == nil {
		t.Error("resizing a sink accepted")
	}
}

func TestApplyTypeIII(t *testing.T) {
	th, _, lg := env(t)
	tr := ctree.NewTree(geom.Pt(0, 0), "CKINVX16")
	a := tr.AddNode(ctree.KindBuffer, geom.Pt(100, 10), "CKINVX4", tr.Source)
	b := tr.AddNode(ctree.KindBuffer, geom.Pt(100, -10), "CKINVX4", tr.Source)
	s := tr.AddNode(ctree.KindSink, geom.Pt(120, 0), "", a.ID)
	if err := Apply(tr, th, lg, Move{Type: TypeIII, Buffer: a.ID, Child: s.ID, NewDrv: b.ID}); err != nil {
		t.Fatal(err)
	}
	if tr.Node(s.ID).Parent != b.ID {
		t.Error("surgery did not take")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateMonotoneInPairs(t *testing.T) {
	th, ch, lg := env(t)
	r := NewRebuilder(th, ch, lg)
	// More pairs at fixed spacing ⇒ more delay.
	d2 := r.Estimate(2, 60, 2, 0, th.SinkCap)
	d4 := r.Estimate(2, 60, 4, 0, th.SinkCap)
	if d4 <= d2 {
		t.Errorf("estimate not increasing in pairs: %v vs %v", d2, d4)
	}
	// Zero pairs = bare wire.
	d0 := r.Estimate(2, 100, 0, 0, th.SinkCap)
	if d0 <= 0 {
		t.Errorf("bare wire estimate %v", d0)
	}
	// One-pair case covered.
	d1 := r.Estimate(2, 100, 1, 0, th.SinkCap)
	if d1 <= d0 {
		t.Errorf("one pair not slower than bare wire: %v vs %v", d1, d0)
	}
}

func TestSelectHitsTarget(t *testing.T) {
	th, ch, lg := env(t)
	r := NewRebuilder(th, ch, lg)
	// Target: delay of 3 pairs at 100µm spacing, size X4, exactly per the
	// estimator. Select must find a solution with small error.
	direct := 300.0
	endLoad := th.SinkCap
	target := make([]float64, th.NumCorners())
	for k := range target {
		target[k] = r.Estimate(2, 100, 3, k, endLoad)
	}
	sol, err := r.Select(direct, endLoad, target)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Err > 25 {
		t.Errorf("selection error = %v ps, too large", sol.Err)
	}
	if sol.Pairs < 2 || sol.Pairs > 4 {
		t.Errorf("pairs = %d, want ≈3", sol.Pairs)
	}
	// Bad target count.
	if _, err := r.Select(direct, endLoad, []float64{1}); err == nil {
		t.Error("bad target length accepted")
	}
}

func TestSelectPrefersBareWireForTinyTargets(t *testing.T) {
	th, ch, lg := env(t)
	r := NewRebuilder(th, ch, lg)
	direct := 80.0
	endLoad := th.SinkCap
	target := make([]float64, th.NumCorners())
	for k := range target {
		target[k] = r.Estimate(0, direct, 0, k, endLoad) // bare-wire delay
	}
	sol, err := r.Select(direct, endLoad, target)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Pairs != 0 {
		t.Errorf("pairs = %d, want 0 (buffer removal)", sol.Pairs)
	}
	if sol.DetourUM != 0 {
		t.Errorf("detour = %v, want 0", sol.DetourUM)
	}
}

func TestRebuildArcEndToEnd(t *testing.T) {
	th, ch, lg := env(t)
	tm := sta.New(th)
	r := NewRebuilder(th, ch, lg)
	tr, _ := chainTree()
	seg := ctree.Segment(tr)
	// The single arc source→sink (b1, b2 interior).
	if len(seg.Arcs) != 1 {
		t.Fatalf("arcs = %d", len(seg.Arcs))
	}
	arc := seg.Arcs[0]
	a0 := tm.Analyze(tr)
	base := sta.ArcDelays(a0, seg)[0]
	// Ask for ~25% more delay at every corner.
	target := make([]float64, len(base))
	for k := range base {
		target[k] = base[k] * 1.25
	}
	sol, err := r.Select(450, th.SinkCap, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RebuildArc(tr, arc, sol); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Post-ECO delay should move toward the target.
	seg2 := ctree.Segment(tr)
	a1 := tm.Analyze(tr)
	after := sta.ArcDelays(a1, seg2)[0]
	for k := range base {
		if after[k] <= base[k] {
			t.Errorf("corner %d: arc delay did not increase (%v → %v, target %v)",
				k, base[k], after[k], target[k])
		}
		// Within 30% of target (discretization + estimator error allowed).
		if rel := math.Abs(after[k]-target[k]) / target[k]; rel > 0.30 {
			t.Errorf("corner %d: rebuilt delay %v vs target %v (rel %.2f)",
				k, after[k], target[k], rel)
		}
	}
}

func TestRebuildArcZeroPairs(t *testing.T) {
	th, ch, lg := env(t)
	r := NewRebuilder(th, ch, lg)
	tr, ids := chainTree()
	seg := ctree.Segment(tr)
	arc := seg.Arcs[0]
	sol := &Solution{CellIdx: 0, SpacingUM: 450, Pairs: 0, DetourUM: 60}
	if _, err := r.RebuildArc(tr, arc, sol); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Node(ids[0]) != nil || tr.Node(ids[1]) != nil {
		t.Error("interior buffers not removed")
	}
	if d := tr.Node(ids[2]).Detour; d != 60 {
		t.Errorf("bottom detour = %v", d)
	}
	if len(tr.Buffers()) != 0 {
		t.Error("stray buffers remain")
	}
}
