package eco

import (
	"math"
	"testing"

	"skewvar/internal/ctree"
	"skewvar/internal/geom"
	"skewvar/internal/sta"
)

// snakeTree builds source → b1 → b2 → sink with pre-existing snaking.
func snakeTree() (*ctree.Tree, []ctree.NodeID) {
	tr := ctree.NewTree(geom.Pt(0, 500), "CKINVX16")
	b1 := tr.AddNode(ctree.KindBuffer, geom.Pt(150, 500), "CKINVX4", tr.Source)
	b1.Detour = 40
	b2 := tr.AddNode(ctree.KindBuffer, geom.Pt(300, 500), "CKINVX4", b1.ID)
	b2.Detour = 25
	s := tr.AddNode(ctree.KindSink, geom.Pt(450, 500), "", b2.ID)
	s.Detour = 15
	return tr, []ctree.NodeID{b1.ID, b2.ID, s.ID}
}

func TestArcDetourBudget(t *testing.T) {
	tr, _ := snakeTree()
	seg := ctree.Segment(tr)
	if got := ArcDetourBudget(tr, seg.Arcs[0]); math.Abs(got-80) > 1e-9 {
		t.Errorf("budget = %v, want 80", got)
	}
}

func TestTrimSlopesPositive(t *testing.T) {
	th, ch, lg := env(t)
	r := NewRebuilder(th, ch, lg)
	tr, _ := snakeTree()
	seg := ctree.Segment(tr)
	slopes := r.TrimSlopes(tr, seg.Arcs[0], th.SinkCap)
	if len(slopes) != th.NumCorners() {
		t.Fatalf("slopes = %v", slopes)
	}
	for k, s := range slopes {
		if s <= 0 {
			t.Errorf("corner %d slope = %v", k, s)
		}
	}
	// Slow corner (c1, Cmax wire + slow gates) has the steepest slope.
	if !(slopes[1] > slopes[3]) {
		t.Errorf("slope ordering: %v", slopes)
	}
}

func TestSelectTrimAddsWireForSlowerTargets(t *testing.T) {
	th, ch, lg := env(t)
	tm := sta.New(th)
	r := NewRebuilder(th, ch, lg)
	tr, ids := snakeTree()
	seg := ctree.Segment(tr)
	arc := seg.Arcs[0]
	a := tm.Analyze(tr)
	arcD := sta.ArcDelays(a, seg)[0]
	// Ask for +wire-shaped delay: current + slope·60µm.
	slopes := r.TrimSlopes(tr, arc, th.SinkCap)
	target := make([]float64, len(arcD))
	for k := range target {
		target[k] = arcD[k] + slopes[k]*60
	}
	sol, err := r.SelectTrim(tr, arc, arcD, target, th.SinkCap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.ExtraUM < 40 || sol.ExtraUM > 80 {
		t.Errorf("trim = %vµm, want ≈60", sol.ExtraUM)
	}
	// Apply and verify the golden timer moved toward the target.
	if _, err := r.ApplyTrim(tr, arc, sol.ExtraUM); err != nil {
		t.Fatal(err)
	}
	a2 := tm.Analyze(tr)
	after := sta.ArcDelays(a2, ctree.Segment(tr))[0]
	for k := range target {
		if after[k] <= arcD[k] {
			t.Errorf("corner %d: no slowdown", k)
		}
		if math.Abs(after[k]-target[k]) > math.Abs(arcD[k]-target[k]) {
			t.Errorf("corner %d: moved away from target", k)
		}
	}
	_ = ids
}

func TestSelectTrimRemovesSnaking(t *testing.T) {
	th, ch, lg := env(t)
	tm := sta.New(th)
	r := NewRebuilder(th, ch, lg)
	tr, _ := snakeTree()
	seg := ctree.Segment(tr)
	arc := seg.Arcs[0]
	a := tm.Analyze(tr)
	arcD := sta.ArcDelays(a, seg)[0]
	slopes := r.TrimSlopes(tr, arc, th.SinkCap)
	target := make([]float64, len(arcD))
	for k := range target {
		target[k] = arcD[k] - slopes[k]*50 // want it faster
	}
	sol, err := r.SelectTrim(tr, arc, arcD, target, th.SinkCap, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sol.ExtraUM >= 0 {
		t.Fatalf("trim = %v, want negative (snake removal)", sol.ExtraUM)
	}
	if -sol.ExtraUM > ArcDetourBudget(tr, arc)+1e-9 {
		t.Fatal("trim removes more than the arc carries")
	}
	if _, err := r.ApplyTrim(tr, arc, sol.ExtraUM); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Budget shrank by the removed amount.
	if got := ArcDetourBudget(tr, ctree.Segment(tr).Arcs[0]); math.Abs(got-(80+sol.ExtraUM)) > 1e-9 {
		t.Errorf("post-trim budget = %v", got)
	}
}

func TestSelectTrimRespectsMaxExtra(t *testing.T) {
	th, ch, lg := env(t)
	tm := sta.New(th)
	r := NewRebuilder(th, ch, lg)
	tr, _ := snakeTree()
	seg := ctree.Segment(tr)
	arc := seg.Arcs[0]
	arcD := sta.ArcDelays(tm.Analyze(tr), seg)[0]
	slopes := r.TrimSlopes(tr, arc, th.SinkCap)
	target := make([]float64, len(arcD))
	for k := range target {
		target[k] = arcD[k] + slopes[k]*200 // wants 200µm
	}
	sol, err := r.SelectTrim(tr, arc, arcD, target, th.SinkCap, 30)
	if err != nil {
		t.Fatal(err)
	}
	if sol.ExtraUM > 30 {
		t.Errorf("trim %vµm exceeds cap 30", sol.ExtraUM)
	}
}

func TestSelectTrimErrors(t *testing.T) {
	th, ch, lg := env(t)
	tm := sta.New(th)
	r := NewRebuilder(th, ch, lg)
	tr, _ := snakeTree()
	seg := ctree.Segment(tr)
	arc := seg.Arcs[0]
	arcD := sta.ArcDelays(tm.Analyze(tr), seg)[0]
	if _, err := r.SelectTrim(tr, arc, arcD[:1], arcD, th.SinkCap, 0); err == nil {
		t.Error("corner mismatch accepted")
	}
	// Target = current: nothing beats doing nothing.
	if _, err := r.SelectTrim(tr, arc, arcD, arcD, th.SinkCap, 0); err == nil {
		t.Error("no-op trim accepted")
	}
}

func TestApplyTrimErrors(t *testing.T) {
	th, ch, lg := env(t)
	r := NewRebuilder(th, ch, lg)
	tr, _ := snakeTree()
	seg := ctree.Segment(tr)
	arc := seg.Arcs[0]
	if _, err := r.ApplyTrim(tr, arc, -10000); err == nil {
		t.Error("over-removal accepted")
	}
	stale := &ctree.Arc{Top: 0, Bottom: ctree.NodeID(99)}
	if _, err := r.ApplyTrim(tr, stale, 5); err == nil {
		t.Error("stale arc accepted")
	}
}

func TestTrimAfterRebuildStaleArc(t *testing.T) {
	// After RebuildArc, the segmentation's Interior list is stale (old
	// nodes removed). Trim helpers must tolerate it: budget and apply work
	// against the surviving anchors.
	th, ch, lg := env(t)
	tm := sta.New(th)
	r := NewRebuilder(th, ch, lg)
	tr, _ := snakeTree()
	seg := ctree.Segment(tr)
	arc := seg.Arcs[0]
	arcD := sta.ArcDelays(tm.Analyze(tr), seg)[0]
	target := make([]float64, len(arcD))
	for k := range arcD {
		target[k] = arcD[k] * 1.2
	}
	sol, err := r.Select(450, th.SinkCap, target)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RebuildArc(tr, arc, sol); err != nil {
		t.Fatal(err)
	}
	// The stale arc still names removed interior nodes.
	if got := ArcDetourBudget(tr, arc); got < 0 {
		t.Fatalf("stale budget = %v", got)
	}
	if _, err := r.SelectTrim(tr, arc, arcD, target, th.SinkCap, 50); err == nil {
		// Fine if a trim is found; apply must not panic on stale interiors.
		if _, err := r.ApplyTrim(tr, arc, 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
