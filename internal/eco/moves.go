// Package eco implements the engineering-change-order layer of the
// framework: the Table-2 local move set (buffer sizing/displacement, child
// sizing, tree surgery) used by the iterative local optimization, and the
// Algorithm-1 LP-guided inverter-pair re-insertion used by the global
// optimization.
package eco

import (
	"fmt"

	"skewvar/internal/ctree"
	"skewvar/internal/geom"
	"skewvar/internal/legalize"
	"skewvar/internal/tech"
)

// MoveType classifies the paper's three local move families (Figure 4).
type MoveType int

// Move families.
const (
	TypeI   MoveType = iota + 1 // sizing and/or displacement of a buffer
	TypeII                      // displacement of a buffer + sizing of one child
	TypeIII                     // tree surgery: driver reassignment
)

// String implements fmt.Stringer.
func (m MoveType) String() string {
	switch m {
	case TypeI:
		return "I"
	case TypeII:
		return "II"
	case TypeIII:
		return "III"
	}
	return fmt.Sprintf("MoveType(%d)", int(m))
}

// DisplaceStep is the displacement quantum of Table 2 (10µm).
const DisplaceStep = 10.0

// SurgeryWindow is the Type-III candidate-driver window (50µm × 50µm).
const SurgeryWindow = 50.0

// Move is one candidate local move.
type Move struct {
	Type     MoveType
	Buffer   ctree.NodeID // the buffer being perturbed
	DX, DY   float64      // displacement applied to Buffer (Type I/II)
	SizeStep int          // −1/0/+1 one-step sizing
	Child    ctree.NodeID // Type II: child whose size changes; Type III: node reassigned
	NewDrv   ctree.NodeID // Type III: the new driver
}

// String implements fmt.Stringer.
func (m Move) String() string {
	switch m.Type {
	case TypeIII:
		return fmt.Sprintf("III{%d→drv %d}", m.Child, m.NewDrv)
	case TypeII:
		return fmt.Sprintf("II{buf %d d(%+.0f,%+.0f) child %d size%+d}", m.Buffer, m.DX, m.DY, m.Child, m.SizeStep)
	default:
		return fmt.Sprintf("I{buf %d d(%+.0f,%+.0f) size%+d}", m.Buffer, m.DX, m.DY, m.SizeStep)
	}
}

var directions = [8][2]float64{
	{0, 1}, {0, -1}, {1, 0}, {-1, 0},
	{1, 1}, {1, -1}, {-1, 1}, {-1, -1},
}

// Enumerate lists the Table-2 candidate moves for one buffer:
//
//	Type I:   displace {N,S,E,W,NE,NW,SE,SW} by 10µm × one-step up/down/keep
//	          sizing, plus pure sizing;
//	Type II:  the eight displacements × one-step up/down sizing on one child
//	          buffer (first two buffer children considered);
//	Type III: reassign one child to a same-level driver within the 50×50µm
//	          window around the child.
func Enumerate(tr *ctree.Tree, t *tech.Tech, buf ctree.NodeID, die geom.Rect) []Move {
	n := tr.Node(buf)
	if n == nil || n.Kind != ctree.KindBuffer {
		return nil
	}
	cell := t.CellByName(n.CellName)
	if cell == nil {
		return nil
	}
	var out []Move
	canUp := t.UpSize(cell) != cell
	canDown := t.DownSize(cell) != cell
	steps := []int{0}
	if canUp {
		steps = append(steps, 1)
	}
	if canDown {
		steps = append(steps, -1)
	}
	// Type I.
	for _, d := range directions {
		p := geom.Pt(n.Loc.X+d[0]*DisplaceStep, n.Loc.Y+d[1]*DisplaceStep)
		if !die.Contains(p) {
			continue
		}
		for _, s := range steps {
			out = append(out, Move{Type: TypeI, Buffer: buf, DX: d[0] * DisplaceStep, DY: d[1] * DisplaceStep, SizeStep: s})
		}
	}
	for _, s := range steps {
		if s != 0 {
			out = append(out, Move{Type: TypeI, Buffer: buf, SizeStep: s})
		}
	}
	// Type II: displacement × child sizing, for up to two buffer children.
	var bufKids []ctree.NodeID
	for _, c := range tr.FanoutPins(buf) {
		if tr.Node(c).Kind == ctree.KindBuffer {
			bufKids = append(bufKids, c)
			if len(bufKids) == 2 {
				break
			}
		}
	}
	for _, ck := range bufKids {
		ccell := t.CellByName(tr.Node(ck).CellName)
		if ccell == nil {
			continue
		}
		var csteps []int
		if t.UpSize(ccell) != ccell {
			csteps = append(csteps, 1)
		}
		if t.DownSize(ccell) != ccell {
			csteps = append(csteps, -1)
		}
		for _, d := range directions {
			p := geom.Pt(n.Loc.X+d[0]*DisplaceStep, n.Loc.Y+d[1]*DisplaceStep)
			if !die.Contains(p) {
				continue
			}
			for _, s := range csteps {
				out = append(out, Move{Type: TypeII, Buffer: buf, DX: d[0] * DisplaceStep, DY: d[1] * DisplaceStep, Child: ck, SizeStep: s})
			}
		}
	}
	// Type III: reassign each child pin of this buffer to a same-level
	// driver within the window.
	for _, ck := range tr.FanoutPins(buf) {
		cn := tr.Node(ck)
		lvl := tr.Level(ck)
		win := geom.NewRect(
			geom.Pt(cn.Loc.X-SurgeryWindow/2, cn.Loc.Y-SurgeryWindow/2),
			geom.Pt(cn.Loc.X+SurgeryWindow/2, cn.Loc.Y+SurgeryWindow/2),
		)
		for _, cand := range tr.Buffers() {
			if cand == buf || cand == ck {
				continue
			}
			cb := tr.Node(cand)
			if !win.Contains(cb.Loc) {
				continue
			}
			// Same level: the candidate drives nodes at the child's level.
			if tr.Level(cand)+1 != lvl {
				continue
			}
			// No cycles: candidate must not live under the child.
			if inSubtree(tr, ck, cand) {
				continue
			}
			out = append(out, Move{Type: TypeIII, Buffer: buf, Child: ck, NewDrv: cand})
		}
	}
	return out
}

func inSubtree(tr *ctree.Tree, root, q ctree.NodeID) bool {
	for cur := q; cur != ctree.NoNode; cur = tr.Node(cur).Parent {
		if cur == root {
			return true
		}
	}
	return false
}

// Apply executes a move on the tree in place, snapping displaced buffers to
// legal sites. The tree must be a clone if the caller wants to keep the
// original.
func Apply(tr *ctree.Tree, t *tech.Tech, lg *legalize.Legalizer, m Move) error {
	n := tr.Node(m.Buffer)
	if n == nil {
		return fmt.Errorf("eco: move on missing buffer %d", m.Buffer)
	}
	switch m.Type {
	case TypeI:
		if m.DX != 0 || m.DY != 0 {
			n.Loc = lg.Snap(geom.Pt(n.Loc.X+m.DX, n.Loc.Y+m.DY))
		}
		if m.SizeStep != 0 {
			if err := resize(tr, t, m.Buffer, m.SizeStep); err != nil {
				return err
			}
		}
	case TypeII:
		if m.DX != 0 || m.DY != 0 {
			n.Loc = lg.Snap(geom.Pt(n.Loc.X+m.DX, n.Loc.Y+m.DY))
		}
		if err := resize(tr, t, m.Child, m.SizeStep); err != nil {
			return err
		}
	case TypeIII:
		if err := tr.ReassignParent(m.Child, m.NewDrv); err != nil {
			return err
		}
	default:
		return fmt.Errorf("eco: unknown move type %v", m.Type)
	}
	return nil
}

func resize(tr *ctree.Tree, t *tech.Tech, id ctree.NodeID, step int) error {
	n := tr.Node(id)
	if n == nil || n.Kind != ctree.KindBuffer {
		return fmt.Errorf("eco: resize of non-buffer %d", id)
	}
	cell := t.CellByName(n.CellName)
	if cell == nil {
		return fmt.Errorf("eco: unknown cell %q", n.CellName)
	}
	switch {
	case step > 0:
		n.CellName = t.UpSize(cell).Name
	case step < 0:
		n.CellName = t.DownSize(cell).Name
	}
	return nil
}
