package eco

import (
	"fmt"
	"math"

	"skewvar/internal/ctree"
)

// TrimSolution is a detour-only arc adjustment: wire snaking is added to (or
// existing snaking removed from) the arc without touching its inverter
// pairs. Routing detour is the third ECO knob of the paper's global
// optimization, and the only one with sub-picosecond delay granularity —
// the LP's small surgical corrections are realized this way, while large
// corrections go through the full Algorithm-1 rebuild.
type TrimSolution struct {
	ExtraUM float64   // signed wire change (negative removes existing snake)
	Err     float64   // Algorithm-1 combined error at the chosen trim
	Est     []float64 // estimated post-trim arc delays per corner
}

// arcDetourBudget returns the total removable snaking on the arc (interior
// nodes + bottom anchor).
func ArcDetourBudget(tr *ctree.Tree, arc *ctree.Arc) float64 {
	var total float64
	for _, id := range arc.Interior {
		if n := tr.Node(id); n != nil {
			total += n.Detour
		}
	}
	if b := tr.Node(arc.Bottom); b != nil {
		total += b.Detour
	}
	return total
}

// lastStageCell returns the cell driving the arc's final segment: the last
// interior buffer, or the top anchor's driver for an unbuffered arc.
func (r *Rebuilder) lastStageCell(tr *ctree.Tree, arc *ctree.Arc) string {
	for i := len(arc.Interior) - 1; i >= 0; i-- {
		if n := tr.Node(arc.Interior[i]); n != nil && n.Kind == ctree.KindBuffer {
			return n.CellName
		}
	}
	if n := tr.Node(arc.Top); n != nil && n.CellName != "" {
		return n.CellName
	}
	return ""
}

// trimSlopes estimates the per-corner delay sensitivity (ps/µm) of snaking
// on the arc's final segment: the wire's own delay growth plus the extra
// load seen by the driving pair.
func (r *Rebuilder) TrimSlopes(tr *ctree.Tree, arc *ctree.Arc, endLoad float64) []float64 {
	cellName := r.lastStageCell(tr, arc)
	cell := r.T.CellByName(cellName)
	// Current final-segment length.
	var drvLoc, botLoc = tr.Node(arc.Top).Loc, tr.Node(arc.Bottom).Loc
	for i := len(arc.Interior) - 1; i >= 0; i-- {
		if n := tr.Node(arc.Interior[i]); n != nil && n.Kind == ctree.KindBuffer {
			drvLoc = n.Loc
			break
		}
	}
	lLast := drvLoc.Manhattan(botLoc) + tr.Node(arc.Bottom).Detour
	if lLast < 5 {
		lLast = 5
	}
	K := r.T.NumCorners()
	slopes := make([]float64, K)
	const h = 10.0
	for k := 0; k < K; k++ {
		d1, _ := r.Char.WireDelay(k, lLast, endLoad)
		d2, _ := r.Char.WireDelay(k, lLast+h, endLoad)
		s := (d2 - d1) / h
		if cell != nil {
			// Added wire cap slows the driving pair.
			load := lLast*r.T.WireC(k) + endLoad
			g1 := cell.DelayPS(k, 40, load)
			g2 := cell.DelayPS(k, 40, load+h*r.T.WireC(k))
			s += (g2 - g1) / h
		}
		slopes[k] = s
	}
	return slopes
}

// SelectTrim searches for the snaking change that best realizes the LP
// delay targets, over [−removable, +maxExtra] in 2µm steps, where maxExtra
// caps the added wire (callers pass the driving net's remaining capacitance
// budget; ≤0 selects the 400µm default). It returns an error if no trim
// improves on doing nothing.
func (r *Rebuilder) SelectTrim(tr *ctree.Tree, arc *ctree.Arc, arcD, dlp []float64, endLoad, maxExtra float64) (*TrimSolution, error) {
	if len(arcD) != r.T.NumCorners() || len(dlp) != len(arcD) {
		return nil, fmt.Errorf("eco: trim target/corner mismatch")
	}
	if maxExtra <= 0 {
		maxExtra = 400
	}
	slopes := r.TrimSlopes(tr, arc, endLoad)
	budget := ArcDetourBudget(tr, arc)
	errAt := func(extra float64) (float64, []float64) {
		est := make([]float64, len(arcD))
		var err float64
		for k := range arcD {
			est[k] = arcD[k] + slopes[k]*extra
			err += math.Abs(est[k] - dlp[k])
		}
		for k := range arcD {
			for k2 := k + 1; k2 < len(arcD); k2++ {
				err += math.Abs((est[k] - est[k2]) - (dlp[k] - dlp[k2]))
			}
		}
		return err, est
	}
	doNothing, _ := errAt(0)
	best := &TrimSolution{ExtraUM: 0, Err: doNothing}
	for extra := -budget; extra <= maxExtra; extra += 2 {
		if e, est := errAt(extra); e < best.Err {
			best = &TrimSolution{ExtraUM: extra, Err: e, Est: est}
		}
	}
	if best.ExtraUM == 0 {
		return nil, fmt.Errorf("eco: no trim improves on the current arc")
	}
	return best, nil
}

// ApplyTrim adjusts the arc's snaking: positive extra is added at the bottom
// anchor; negative extra consumes existing detours bottom-up. It returns the
// nodes whose edges changed (for incremental re-timing).
func (r *Rebuilder) ApplyTrim(tr *ctree.Tree, arc *ctree.Arc, extra float64) ([]ctree.NodeID, error) {
	bottom := tr.Node(arc.Bottom)
	if bottom == nil {
		return nil, fmt.Errorf("eco: stale arc")
	}
	if extra >= 0 {
		bottom.Detour += extra
		return []ctree.NodeID{arc.Bottom}, nil
	}
	dirty := []ctree.NodeID{arc.Bottom}
	remove := -extra
	if take := math.Min(remove, bottom.Detour); take > 0 {
		bottom.Detour -= take
		remove -= take
	}
	for i := len(arc.Interior) - 1; i >= 0 && remove > 1e-9; i-- {
		n := tr.Node(arc.Interior[i])
		if n == nil {
			continue
		}
		take := math.Min(remove, n.Detour)
		if take > 0 {
			n.Detour -= take
			remove -= take
			dirty = append(dirty, n.ID)
		}
	}
	if remove > 1e-6 {
		return nil, fmt.Errorf("eco: trim removed more snaking than the arc carries (%.1fµm short)", remove)
	}
	return dirty, nil
}
