// Command gentest generates the benchmark designs of the paper's evaluation
// (classes CLS1 and CLS2, §5.1) and writes them as JSON, optionally with
// DEF- and SPEF-flavoured exports.
//
// Usage:
//
//	gentest -case CLS1v1 -ffs 420 -o cls1v1.json [-def cls1v1.def] [-spef cls1v1.spef]
package main

import (
	"flag"
	"fmt"
	"os"

	"skewvar/internal/edaio"
	"skewvar/internal/tech"
	"skewvar/internal/testgen"
)

func main() {
	caseName := flag.String("case", "CLS1v1", "testcase: CLS1v1, CLS1v2 or CLS2v1")
	ffs := flag.Int("ffs", 0, "flip-flop count (0 = variant default)")
	out := flag.String("o", "", "output design JSON (default stdout)")
	defOut := flag.String("def", "", "also write a DEF-flavoured export")
	spefOut := flag.String("spef", "", "also write a SPEF-flavoured export (nominal corner)")
	reportT := flag.Bool("report", false, "print a timing report to stderr")
	flag.Parse()

	base := tech.Default28nm()
	var v testgen.Variant
	switch *caseName {
	case "CLS1v1":
		v = testgen.CLS1v1(*ffs)
	case "CLS1v2":
		v = testgen.CLS1v2(*ffs)
	case "CLS2v1":
		v = testgen.CLS2v1(*ffs)
	default:
		fatalf("unknown testcase %q", *caseName)
	}
	d, tm, err := testgen.Build(base, v)
	if err != nil {
		fatalf("building %s: %v", v.Name, err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := edaio.WriteDesign(w, d); err != nil {
		fatalf("writing design: %v", err)
	}
	if *defOut != "" {
		if err := writeTo(*defOut, func(f *os.File) error { return edaio.WriteDEF(f, d) }); err != nil {
			fatalf("writing DEF: %v", err)
		}
	}
	if *spefOut != "" {
		if err := writeTo(*spefOut, func(f *os.File) error {
			return edaio.WriteSPEF(f, d, tm.Tech, tm.Tech.Nominal)
		}); err != nil {
			fatalf("writing SPEF: %v", err)
		}
	}
	if *reportT {
		if err := edaio.TimingReport(os.Stderr, d, tm); err != nil {
			fatalf("timing report: %v", err)
		}
	}
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fn(f)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "gentest: "+format+"\n", args...)
	os.Exit(1)
}
