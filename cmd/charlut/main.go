// Command charlut characterizes the stage-delay lookup tables
// (LUTuniform/LUTdetail, paper §4.1) for the synthetic 28nm technology and
// dumps the Figure-2 delay-ratio study: scatter points and fitted W-window
// envelopes per corner pair.
//
// Usage:
//
//	charlut            # summary tables to stdout
//	charlut -csv fig2  # also writes fig2_c1c0.csv / fig2_c2c0.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"skewvar/internal/exp"
	"skewvar/internal/lut"
	"skewvar/internal/report"
)

func main() {
	csvPrefix := flag.String("csv", "", "write per-pair scatter CSVs with this prefix")
	flag.Parse()

	t, ch := exp.Technology()
	// LUT summary.
	tb := &report.Table{
		Title:   "LUTuniform stage delays (ps) at 100µm spacing",
		Headers: []string{"Cell"},
	}
	for _, c := range t.Corners {
		tb.Headers = append(tb.Headers, c.Name)
	}
	qi := int((100 - lut.SpacingMin) / lut.SpacingStep)
	for p := 0; p < ch.NumCells(); p++ {
		row := []string{t.Cells[p].Name}
		for k := range t.Corners {
			row = append(row, fmt.Sprintf("%.1f", ch.Uniform(p, qi, k)))
		}
		tb.AddRow(row...)
	}
	fmt.Println(tb.Render())

	res, ftb, err := exp.Figure2()
	if err != nil {
		fatalf("figure 2: %v", err)
	}
	fmt.Println(ftb.Render())
	if *csvPrefix != "" {
		for _, r := range res {
			name := fmt.Sprintf("%s_c%dc%d.csv", *csvPrefix, r.KNum, r.KDen)
			if err := os.WriteFile(name, []byte(r.CSV), 0o644); err != nil {
				fatalf("writing %s: %v", name, err)
			}
			fmt.Printf("wrote %s (%d scatter points)\n", name, r.Samples)
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "charlut: "+format+"\n", args...)
	os.Exit(1)
}
