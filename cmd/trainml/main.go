// Command trainml trains the per-corner delta-latency predictors on
// artificial testcases (paper §4.2: one-time effort per technology) and
// saves them as a JSON model bundle for cmd/skewopt. It also prints the
// Figure-5-style held-out accuracy table.
//
// Usage:
//
//	trainml -kind hsm -cases 40 -moves 25 -o models.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"skewvar/internal/core"
	"skewvar/internal/exp"
)

func main() {
	kind := flag.String("kind", "hsm", "model kind: hsm, ann, svr or ridge")
	cases := flag.Int("cases", 40, "artificial training testcases")
	moves := flag.Int("moves", 25, "sampled moves per case")
	seed := flag.Int64("seed", 1, "training seed")
	out := flag.String("o", "", "output model bundle (default stdout)")
	evaluate := flag.Bool("eval", true, "print held-out accuracy (Figure 5)")
	flag.Parse()

	// Interruptible training: ^C cancels between cases/moves/corner fits
	// (see core.BuildDataset) instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	t, _ := exp.Technology()
	model, err := core.TrainStageModel(ctx, t, core.TrainConfig{
		Kind: *kind, Cases: *cases, MovesPerCase: *moves, Seed: *seed,
	})
	if err != nil {
		fatalf("training: %v", err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := core.SaveStageModel(w, model); err != nil {
		fatalf("saving models: %v", err)
	}
	if *evaluate {
		_, tb, err := exp.Figure5(exp.Config{
			ModelKind: *kind, TrainCases: *cases, TrainMoves: *moves, Seed: *seed,
		})
		if err != nil {
			fatalf("evaluating: %v", err)
		}
		fmt.Fprintln(os.Stderr, tb.Render())
		fmt.Fprintf(os.Stderr, "correction shrink factors per corner: %v\n", model.Shrink)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "trainml: "+format+"\n", args...)
	os.Exit(1)
}
