// Command skewjournal inspects and repairs skewd spool directories: the
// checksummed job journal, its snapshot, and the quarantine file the
// scrubber maintains (docs/ROBUSTNESS.md, "Durable storage format").
//
// Usage:
//
//	skewjournal inspect -spool ./spool          spool summary + per-job states (JSON)
//	skewjournal verify  -spool ./spool          check every frame, mutate nothing
//	skewjournal compact -spool ./spool          fold the journal into the snapshot
//	skewjournal repair  -spool ./spool          quarantine rot, heal tears and half-swaps
//
// verify exits 0 on a spool that is byte-perfect, 1 when damage was found
// (the report says what a repair would do), and 2 on usage errors or a
// spool that cannot be loaded at all — e.g. a corrupt snapshot, which is
// not locally repairable because the compacted-away records exist nowhere
// else. compact and repair require the owning daemon to be stopped: both
// rewrite spool files and assume a quiescent single writer.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"skewvar/internal/serve"
)

const (
	exitDamage = 1
	exitUsage  = 2
)

func usage() {
	fmt.Fprintf(os.Stderr, "usage: skewjournal {inspect|verify|compact|repair} -spool DIR\n")
	os.Exit(exitUsage)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet("skewjournal "+cmd, flag.ExitOnError)
	spool := fs.String("spool", "", "skewd spool directory (required)")
	jobs := fs.Bool("jobs", false, "inspect: also list per-job folded states")
	fs.Parse(os.Args[2:])
	if *spool == "" {
		fmt.Fprintf(os.Stderr, "skewjournal %s: -spool is required\n", cmd)
		os.Exit(exitUsage)
	}
	// A spool with no journal yet is legitimately empty, but a directory
	// that does not exist is a typo'd path — refuse rather than report a
	// pristine empty spool.
	if fi, err := os.Stat(*spool); err != nil || !fi.IsDir() {
		fatalf("%s: not a spool directory (%v)", *spool, err)
	}

	switch cmd {
	case "inspect":
		rep, jj, err := serve.InspectSpool(*spool)
		if err != nil {
			fatalf("inspect %s: %v", *spool, err)
		}
		out := map[string]interface{}{"spool": *spool, "report": rep}
		if *jobs {
			list := make([]map[string]interface{}, 0, len(jj))
			for _, j := range jj {
				list = append(list, map[string]interface{}{
					"id": j.ID, "state": j.State, "terminal": j.Terminal,
					"stolen": j.Stolen, "thief": j.Thief,
					"attempts": j.Status.Attempts, "class": j.Status.Class,
				})
			}
			out["jobs"] = list
		}
		emit(out)
	case "verify":
		rep, err := serve.VerifySpool(*spool)
		if err != nil {
			fatalf("verify %s: %v", *spool, err)
		}
		emit(map[string]interface{}{"spool": *spool, "report": rep})
		if rep.Quarantined > 0 || rep.TornHealed || rep.StaleHealed {
			fmt.Fprintf(os.Stderr, "skewjournal: %s has damage a repair would fix\n", *spool)
			os.Exit(exitDamage)
		}
	case "compact":
		rep, err := serve.CompactSpool(*spool)
		if err != nil {
			fatalf("compact %s: %v", *spool, err)
		}
		emit(map[string]interface{}{"spool": *spool, "report": rep})
	case "repair":
		rep, err := serve.RepairSpool(*spool)
		if err != nil {
			fatalf("repair %s: %v", *spool, err)
		}
		emit(map[string]interface{}{"spool": *spool, "report": rep})
	default:
		usage()
	}
}

func emit(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatalf("encoding output: %v", err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewjournal: "+format+"\n", args...)
	os.Exit(exitUsage)
}
