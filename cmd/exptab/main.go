// Command exptab regenerates the paper's evaluation artifacts — every table
// and figure of §5 — at the configured scale, writing text tables and CSV
// series into an output directory. EXPERIMENTS.md is produced from this
// command's output.
//
// Usage:
//
//	exptab -exp all -out artifacts/
//	exptab -exp table5 -ffs 420 -pairs 300
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"skewvar/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment: corners, testcases, balancing, fig2, fig5, fig6, table5, fig8, fig9 or all")
	outDir := flag.String("out", "", "artifact directory (default: stdout only)")
	ffs := flag.Int("ffs", 0, "flip-flops per testcase (0 = default 420)")
	pairsN := flag.Int("pairs", 0, "top critical pairs (0 = default 300)")
	kind := flag.String("kind", "", "model kind (default hsm)")
	cases := flag.Int("cases", 0, "training testcases (0 = default 40)")
	iters := flag.Int("iters", 0, "local iterations (0 = default 12)")
	seed := flag.Int64("seed", 0, "seed (0 = default 1)")
	flag.Parse()

	cfg := exp.Config{
		NumFFs: *ffs, TopPairs: *pairsN, ModelKind: *kind,
		TrainCases: *cases, LocalIters: *iters, Seed: *seed,
	}
	runner := &runner{outDir: *outDir}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("creating %s: %v", *outDir, err)
		}
	}

	sel := map[string]bool{}
	for _, w := range strings.Split(*which, ",") {
		sel[strings.TrimSpace(w)] = true
	}
	all := sel["all"]

	var t5 *exp.Table5Result
	if all || sel["corners"] {
		runner.emit("table3_corners", exp.Table3().Render())
	}
	if all || sel["testcases"] {
		envs, err := exp.BuildTestcases(cfg)
		if err != nil {
			fatalf("testcases: %v", err)
		}
		runner.emit("table4_testcases", exp.Table4(envs).Render())
	}
	if all || sel["balancing"] {
		tb, err := exp.BalancingStudy(cfg)
		if err != nil {
			fatalf("balancing: %v", err)
		}
		runner.emit("table_balancing_mcmm_mcsm", tb.Render())
	}
	if all || sel["fig2"] {
		res, tb, err := exp.Figure2()
		if err != nil {
			fatalf("fig2: %v", err)
		}
		runner.emit("fig2_ratio_envelopes", tb.Render())
		for _, r := range res {
			runner.emitFile(fmt.Sprintf("fig2_c%dc%d.csv", r.KNum, r.KDen), r.CSV)
		}
	}
	if all || sel["fig5"] {
		res, tb, err := exp.Figure5(cfg)
		if err != nil {
			fatalf("fig5: %v", err)
		}
		var b strings.Builder
		b.WriteString(tb.Render())
		for _, r := range res {
			fmt.Fprintf(&b, "\ncorner c%d %%-error histogram:\n%s", r.Corner, r.Histogram)
			runner.emitFile(fmt.Sprintf("fig5_c%d.csv", r.Corner), r.CSV)
		}
		runner.emit("fig5_model_accuracy", b.String())
	}
	if all || sel["fig6"] {
		_, tb, err := exp.Figure6(cfg)
		if err != nil {
			fatalf("fig6: %v", err)
		}
		runner.emit("fig6_best_move_identification", tb.Render())
	}
	if all || sel["table5"] || sel["fig9"] {
		start := time.Now()
		var tbRender string
		var err error
		t5, tbRender, err = runTable5(cfg)
		if err != nil {
			fatalf("table5: %v", err)
		}
		if all || sel["table5"] {
			runner.emit("table5_results", tbRender+
				fmt.Sprintf("\n(flows completed in %.1fs)\n", time.Since(start).Seconds()))
		}
	}
	if all || sel["fig8"] {
		res, tb, err := exp.Figure8(cfg)
		if err != nil {
			fatalf("fig8: %v", err)
		}
		runner.emit("fig8_local_trajectory", tb.Render())
		runner.emitFile("fig8_trajectory.csv", res.CSV)
	}
	if all || sel["fig9"] {
		res, tb, err := exp.Figure9(cfg, t5)
		if err != nil {
			fatalf("fig9: %v", err)
		}
		var b strings.Builder
		b.WriteString(tb.Render())
		for _, r := range res {
			fmt.Fprintf(&b, "\n%s original:\n%s\n%s optimized:\n%s",
				r.CornerName, r.OrigHist, r.CornerName, r.OptHist)
		}
		runner.emit("fig9_skew_ratio_distributions", b.String())
	}
}

func runTable5(cfg exp.Config) (*exp.Table5Result, string, error) {
	res, tb, err := exp.Table5(cfg)
	if err != nil {
		return nil, "", err
	}
	return res, tb.Render(), nil
}

type runner struct{ outDir string }

func (r *runner) emit(name, content string) {
	fmt.Printf("==== %s ====\n%s\n", name, content)
	r.emitFile(name+".txt", content)
}

func (r *runner) emitFile(name, content string) {
	if r.outDir == "" {
		return
	}
	if err := os.WriteFile(filepath.Join(r.outDir, name), []byte(content), 0o644); err != nil {
		fatalf("writing %s: %v", name, err)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "exptab: "+format+"\n", args...)
	os.Exit(1)
}
