// Command skewd is the fault-tolerant optimization service: a daemon
// accepting skew-optimization jobs over HTTP and running them through the
// same flows as skewopt, built to survive panicking jobs, torn journal
// writes, kill -9, and overload (docs/ROBUSTNESS.md).
//
// Usage:
//
//	skewd -addr 127.0.0.1:7077 -spool /var/lib/skewd
//	skewd -addr 127.0.0.1:0 -spool ./spool -workers 4 -queue 16
//
// API:
//
//	POST /jobs              submit a job {design, flow, pairs, iters, ...}
//	GET  /jobs/{id}         job status (state, degradation, fault counts)
//	GET  /jobs/{id}/result  optimized design of a finished job
//	GET  /healthz /readyz /metrics
//
// Lifecycle: SIGTERM/SIGINT starts a graceful drain — admission stops
// (503), in-flight jobs get -drain-timeout to finish, stragglers are
// canceled and suspended via their checkpoints, sinks are flushed. A
// restarted skewd replays the spool's job journal and resumes every job
// the previous process did not finish.
//
// Exit codes: 0 clean drain, 1 startup/serve failure, 2 usage error,
// 3 drain did not settle (a job was still wedged at the deadline).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skewvar/internal/core"
	"skewvar/internal/exp"
	"skewvar/internal/faults"
	"skewvar/internal/obs"
	"skewvar/internal/serve"
)

const (
	exitFailure   = 1
	exitUsage     = 2
	exitUnsettled = 3
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "listen address (host:port; :0 picks a free port)")
	spool := flag.String("spool", "", "spool directory for the job journal and per-job artifacts (required)")
	workers := flag.Int("workers", 2, "worker pool size (concurrent jobs)")
	queue := flag.Int("queue", 8, "max queued jobs before submits are rejected with 429")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job deadline ceiling")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "drain budget before in-flight jobs are canceled and suspended")
	journalBatch := flag.Int("journal-batch", 1, "journal group-commit batch size (1 = fsync per record)")
	journalWindow := flag.Duration("journal-window", 0, "max wait for a journal batch to fill before flushing anyway")
	compactEvery := flag.Int("compact-every", 0, "journal records between snapshot compactions (0 = default 256, negative disables)")
	rate := flag.Float64("rate", 0, "per-tenant admission rate limit in jobs/second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-tenant admission burst (default: ceil of -rate)")
	modelPath := flag.String("model", "", "trained model bundle (from trainml); trains a quick model if empty")
	faultSpec := flag.String("faults", "", "deterministic fault injection spec, e.g. 'worker-panic:first=1' (testing)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault injection")
	metricsPath := flag.String("metrics", "", "also write the final server metrics snapshot here on exit")
	flag.Parse()

	if *spool == "" {
		usagef("-spool is required")
	}
	if *workers < 1 || *queue < 1 {
		usagef("-workers and -queue must be >= 1")
	}
	inj, err := faults.Parse(*faultSpec, *faultSeed)
	if err != nil {
		usagef("bad -faults spec: %v", err)
	}

	tech, ch := exp.Technology()
	model := loadModel(*modelPath)

	rec := obs.New()
	s, err := serve.New(serve.Config{
		SpoolDir:     *spool,
		Workers:      *workers,
		QueueDepth:   *queue,
		JobTimeout:    *jobTimeout,
		DrainTimeout:  *drainTimeout,
		JournalBatch:  *journalBatch,
		JournalWindow: *journalWindow,
		CompactEvery:  *compactEvery,
		RatePerTenant: *rate,
		RateBurst:     *burst,
		Tech:          tech,
		Char:          ch,
		Model:         model,
		Faults:        inj,
		Obs:           rec,
		RetrySeed:     *faultSeed,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "skewd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listening on %s: %v", *addr, err)
	}
	s.Start(ln)
	// The address line is the readiness handshake for scripts and the e2e
	// harness (with -addr :0 it carries the picked port).
	fmt.Fprintf(os.Stderr, "skewd: listening on http://%s (spool %s)\n", ln.Addr(), *spool)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "skewd: %v: draining\n", got)
	case err := <-s.AcceptErr():
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("serve: %v", err)
		}
	}

	settled := s.Drain()
	if *metricsPath != "" {
		if err := rec.WriteMetrics(*metricsPath); err != nil {
			fmt.Fprintf(os.Stderr, "skewd: writing metrics: %v\n", err)
			settled = false
		}
	}
	if !settled {
		fmt.Fprintln(os.Stderr, "skewd: drain did not settle; unfinished jobs remain journaled for the next start")
		os.Exit(exitUnsettled)
	}
}

func loadModel(path string) *core.MLStageModel {
	if path == "" {
		fmt.Fprintln(os.Stderr, "skewd: no -model given; training a quick ridge predictor")
		t, _ := exp.Technology()
		m, err := core.TrainStageModel(context.Background(), t, core.TrainConfig{
			Kind: "ridge", Cases: 12, MovesPerCase: 12, Seed: 1,
		})
		if err != nil {
			fatalf("quick training: %v", err)
		}
		return m
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	m, err := core.LoadStageModel(f)
	if err != nil {
		fatalf("loading model: %v", err)
	}
	return m
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewd: "+format+"\n", args...)
	os.Exit(exitFailure)
}

func usagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewd: "+format+"\n", args...)
	os.Exit(exitUsage)
}
