// Command benchjson converts `go test -bench` text (stdin) into a JSON
// record (stdout) that keeps the benchstat-compatible fields per benchmark
// and derives, for every sub-benchmark group swept over worker counts
// (names ending in "/j=N"), the speedup against that group's j=1 serial
// baseline. The host CPU count is recorded alongside: on a single-CPU
// machine the parallel speedups are bounded by 1 and only the cache effects
// (warm vs cold) are visible.
//
// Usage:
//
//	go test -run '^$' -bench Parallel -benchmem . | benchjson > BENCH_pr4.json
//
// With -compare it instead gates one converted report against another
// (see compare.go):
//
//	benchjson -compare \
//	  -require 'BenchmarkSTAAnalyzeParallel/cold/j=1:ns<=0.667x,allocs<=0.25x' \
//	  BENCH_pr7.json BENCH_pr9.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one result line, in benchstat's vocabulary.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the whole converted run.
type Report struct {
	Goos       string             `json:"goos,omitempty"`
	Goarch     string             `json:"goarch,omitempty"`
	Pkg        string             `json:"pkg,omitempty"`
	CPU        string             `json:"cpu,omitempty"`
	NumCPU     int                `json:"num_cpu"`
	Benchmarks []Benchmark        `json:"benchmarks"`
	Speedups   map[string]float64 `json:"speedups_vs_j1,omitempty"`

	// Metrics collects the "OBSMETRIC name=value" lines benchmarks log from
	// their untimed regions (cache hit rates, move accept rates, …).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	var (
		compare  = flag.Bool("compare", false, "compare two converted reports: benchjson -compare old.json new.json")
		maxNs    = flag.Float64("max-ns-regress", 1.25, "with -compare: fail when any benchmark's ns/op grows beyond this ratio")
		maxAlloc = flag.Float64("max-alloc-regress", 1.25, "with -compare: fail when any benchmark's allocs/op grows beyond this ratio")
		reqs     requireFlag
	)
	flag.Var(&reqs, "require",
		"with -compare: required improvement, e.g. 'BenchmarkX/j=1:ns<=0.667x,allocs<=64' (repeatable; 'x' bounds are ratios of the old run)")
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -compare needs exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *maxNs, *maxAlloc, reqs))
	}
	rep := Report{NumCPU: runtime.NumCPU()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		if i := strings.Index(line, "OBSMETRIC "); i >= 0 {
			// The marker follows a "bench_test.go:N:" log prefix; each token
			// after it is name=value, where the name itself may contain '='
			// (e.g. "…/j=1"), so split at the last one.
			for _, tok := range strings.Fields(line[i+len("OBSMETRIC "):]) {
				eq := strings.LastIndex(tok, "=")
				if eq <= 0 {
					continue
				}
				v, err := strconv.ParseFloat(tok[eq+1:], 64)
				if err != nil {
					continue
				}
				if rep.Metrics == nil {
					rep.Metrics = map[string]float64{}
				}
				rep.Metrics[tok[:eq]] = v
			}
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Iterations, _ = strconv.Atoi(m[2])
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	rep.Speedups = speedups(rep.Benchmarks)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// speedups derives ns(j=1)/ns(j=N) per "…/j=N" group. Names keep the
// "-<procs>" suffix go test appends, which must be stripped before matching.
func speedups(bs []Benchmark) map[string]float64 {
	base := map[string]float64{} // group prefix → j=1 ns/op
	type entry struct {
		key string
		ns  float64
	}
	var others []entry
	for _, b := range bs {
		name := b.Name
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		i := strings.LastIndex(name, "/j=")
		if i < 0 {
			continue
		}
		group, js := name[:i], name[i+len("/j="):]
		if js == "1" {
			base[group] = b.NsPerOp
		} else {
			others = append(others, entry{group + "/j=" + js, b.NsPerOp})
		}
	}
	if len(base) == 0 {
		return nil
	}
	out := map[string]float64{}
	for _, e := range others {
		group := e.key[:strings.LastIndex(e.key, "/j=")]
		if b, ok := base[group]; ok && e.ns > 0 {
			out[e.key] = b / e.ns
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
