package main

// Regression-gate mode: `benchjson -compare old.json new.json` loads two
// reports previously produced by this command and fails (exit 1) when
// the new run regressed — or, with -require, when an explicit improvement
// target is not met. This is what `make bench-gate` runs against the
// committed BENCH_*.json files, so kernel-performance claims are checked
// by CI rather than asserted in prose.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// requirement is one parsed -require flag: a benchmark name plus metric
// constraints that must all hold between old and new.
type requirement struct {
	name  string
	terms []reqTerm
}

// reqTerm is one constraint: metric <= bound, where the bound is either
// relative to the old value ("0.667x") or an absolute new-run value
// ("64").
type reqTerm struct {
	metric   string // "ns" or "allocs"
	bound    float64
	relative bool
}

// requireFlag accumulates repeated -require values.
type requireFlag []requirement

func (r *requireFlag) String() string { return fmt.Sprintf("%d requirement(s)", len(*r)) }

func (r *requireFlag) Set(s string) error {
	req, err := parseRequire(s)
	if err != nil {
		return err
	}
	*r = append(*r, req)
	return nil
}

// parseRequire parses "BenchmarkName:ns<=0.667x,allocs<=0.25x". Metrics
// are ns (ns/op) and allocs (allocs/op); a trailing 'x' makes the bound
// a ratio of the old run's value, otherwise it is an absolute ceiling on
// the new run's value.
func parseRequire(s string) (requirement, error) {
	i := strings.LastIndex(s, ":")
	if i <= 0 || i == len(s)-1 {
		return requirement{}, fmt.Errorf("require %q: want name:metric<=bound[,...]", s)
	}
	req := requirement{name: s[:i]}
	for _, part := range strings.Split(s[i+1:], ",") {
		j := strings.Index(part, "<=")
		if j <= 0 {
			return requirement{}, fmt.Errorf("require %q: term %q: only metric<=bound is supported", s, part)
		}
		term := reqTerm{metric: part[:j]}
		if term.metric != "ns" && term.metric != "allocs" {
			return requirement{}, fmt.Errorf("require %q: unknown metric %q (want ns or allocs)", s, term.metric)
		}
		val := part[j+2:]
		if strings.HasSuffix(val, "x") {
			term.relative = true
			val = strings.TrimSuffix(val, "x")
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return requirement{}, fmt.Errorf("require %q: bad bound %q: %v", s, part[j+2:], err)
		}
		term.bound = f
		req.terms = append(req.terms, term)
	}
	return req, nil
}

// stripProcs removes the "-<GOMAXPROCS>" suffix go test appends, so
// reports from machines with different CPU counts still line up.
func stripProcs(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func loadReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// compareReports checks new against old and writes a per-benchmark
// verdict table to w. Any benchmark present in both runs whose ns/op or
// allocs/op grew beyond the regression thresholds is a failure, as is
// any unmet or unmatched -require. Returns the failure descriptions.
func compareReports(w io.Writer, old, new *Report, maxNsRegress, maxAllocRegress float64, reqs []requirement) []string {
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[stripProcs(b.Name)] = b
	}
	var failures []string
	matched := map[string]bool{}
	var names []string
	newBy := map[string]Benchmark{}
	for _, b := range new.Benchmarks {
		n := stripProcs(b.Name)
		newBy[n] = b
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(w, "  new      %-60s %12.0f ns/op %8d allocs/op\n", name, nb.NsPerOp, nb.AllocsPerOp)
			continue
		}
		matched[name] = true
		nsRatio := ratio(nb.NsPerOp, ob.NsPerOp)
		allocRatio := ratio(float64(nb.AllocsPerOp), float64(ob.AllocsPerOp))
		verdict := "ok"
		if nsRatio > maxNsRegress {
			verdict = "REGRESS"
			failures = append(failures, fmt.Sprintf("%s: ns/op %.0f → %.0f (%.2fx > %.2fx allowed)",
				name, ob.NsPerOp, nb.NsPerOp, nsRatio, maxNsRegress))
		}
		if ob.AllocsPerOp > 0 && allocRatio > maxAllocRegress {
			verdict = "REGRESS"
			failures = append(failures, fmt.Sprintf("%s: allocs/op %d → %d (%.2fx > %.2fx allowed)",
				name, ob.AllocsPerOp, nb.AllocsPerOp, allocRatio, maxAllocRegress))
		}
		fmt.Fprintf(w, "  %-8s %-60s ns/op %.2fx  allocs %.2fx\n", verdict, name, nsRatio, allocRatio)
	}
	var oldNames []string
	for name := range oldBy {
		oldNames = append(oldNames, name)
	}
	sort.Strings(oldNames)
	for _, name := range oldNames {
		if _, ok := newBy[name]; !ok {
			failures = append(failures, fmt.Sprintf("%s: present in old run, missing from new", name))
		}
	}
	for _, req := range reqs {
		ob, okOld := oldBy[req.name]
		nb, okNew := newBy[req.name]
		if !okOld || !okNew {
			failures = append(failures, fmt.Sprintf("require %s: benchmark not found in both runs", req.name))
			continue
		}
		for _, term := range req.terms {
			oldV, newV := ob.NsPerOp, nb.NsPerOp
			if term.metric == "allocs" {
				oldV, newV = float64(ob.AllocsPerOp), float64(nb.AllocsPerOp)
			}
			limit := term.bound
			if term.relative {
				limit = term.bound * oldV
			}
			if newV > limit {
				failures = append(failures, fmt.Sprintf("require %s: %s = %.0f exceeds limit %.0f (old %.0f)",
					req.name, term.metric, newV, limit, oldV))
			} else {
				fmt.Fprintf(w, "  require  %-60s %s %.0f <= %.0f\n", req.name, term.metric, newV, limit)
			}
		}
	}
	return failures
}

func ratio(new, old float64) float64 {
	if old <= 0 {
		if new <= 0 {
			return 1
		}
		return new // old was zero: any nonzero new is reported as-is
	}
	return new / old
}

// runCompare is the -compare entry point.
func runCompare(oldPath, newPath string, maxNsRegress, maxAllocRegress float64, reqs []requirement) int {
	old, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	new, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	fmt.Printf("comparing %s (old) vs %s (new):\n", oldPath, newPath)
	failures := compareReports(os.Stdout, old, new, maxNsRegress, maxAllocRegress, reqs)
	if len(failures) > 0 {
		fmt.Printf("FAIL: %d violation(s)\n", len(failures))
		for _, f := range failures {
			fmt.Printf("  - %s\n", f)
		}
		return 1
	}
	fmt.Println("PASS")
	return 0
}
