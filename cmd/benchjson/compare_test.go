package main

import (
	"strings"
	"testing"
)

func rep(bs ...Benchmark) *Report { return &Report{Benchmarks: bs} }

func bench(name string, ns float64, allocs int64) Benchmark {
	return Benchmark{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestParseRequire(t *testing.T) {
	req, err := parseRequire("BenchmarkX/cold/j=1:ns<=0.667x,allocs<=64")
	if err != nil {
		t.Fatal(err)
	}
	if req.name != "BenchmarkX/cold/j=1" || len(req.terms) != 2 {
		t.Fatalf("parsed %+v", req)
	}
	if !req.terms[0].relative || req.terms[0].metric != "ns" || req.terms[0].bound != 0.667 {
		t.Fatalf("ns term %+v", req.terms[0])
	}
	if req.terms[1].relative || req.terms[1].metric != "allocs" || req.terms[1].bound != 64 {
		t.Fatalf("allocs term %+v", req.terms[1])
	}
	for _, bad := range []string{"no-colon", "x:", "x:ns>=2", "x:watts<=1", "x:ns<=fast"} {
		if _, err := parseRequire(bad); err == nil {
			t.Fatalf("parseRequire(%q) should fail", bad)
		}
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	old := rep(bench("BenchmarkA-8", 1000, 100), bench("BenchmarkB-8", 500, 10))
	// A's time regressed 2x; B's allocs regressed 3x. Different -procs
	// suffixes must still match.
	new := rep(bench("BenchmarkA-4", 2000, 100), bench("BenchmarkB-4", 500, 30))
	fails := compareReports(&strings.Builder{}, old, new, 1.25, 1.25, nil)
	if len(fails) != 2 {
		t.Fatalf("want 2 failures, got %v", fails)
	}
	if !strings.Contains(fails[0], "BenchmarkA") || !strings.Contains(fails[1], "BenchmarkB") {
		t.Fatalf("unexpected failures %v", fails)
	}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	old := rep(bench("BenchmarkA", 1000, 100))
	new := rep(bench("BenchmarkA", 1100, 110), bench("BenchmarkNew", 42, 1))
	if fails := compareReports(&strings.Builder{}, old, new, 1.25, 1.25, nil); len(fails) != 0 {
		t.Fatalf("10%% drift within a 25%% threshold should pass: %v", fails)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	old := rep(bench("BenchmarkA", 1000, 100), bench("BenchmarkGone", 10, 1))
	new := rep(bench("BenchmarkA", 1000, 100))
	fails := compareReports(&strings.Builder{}, old, new, 1.25, 1.25, nil)
	if len(fails) != 1 || !strings.Contains(fails[0], "BenchmarkGone") {
		t.Fatalf("dropped benchmark must fail the gate: %v", fails)
	}
}

func TestCompareRequirements(t *testing.T) {
	old := rep(bench("BenchmarkSTA/cold/j=1", 3000, 1000), bench("BenchmarkSTA/warm/j=1", 400, 50))
	new := rep(bench("BenchmarkSTA/cold/j=1", 1500, 200), bench("BenchmarkSTA/warm/j=1", 350, 0))

	met := []requirement{
		mustReq(t, "BenchmarkSTA/cold/j=1:ns<=0.667x,allocs<=0.25x"),
		mustReq(t, "BenchmarkSTA/warm/j=1:allocs<=64"),
	}
	if fails := compareReports(&strings.Builder{}, old, new, 1.25, 1.25, met); len(fails) != 0 {
		t.Fatalf("met requirements should pass: %v", fails)
	}

	unmet := []requirement{mustReq(t, "BenchmarkSTA/cold/j=1:ns<=0.4x")}
	if fails := compareReports(&strings.Builder{}, old, new, 1.25, 1.25, unmet); len(fails) != 1 {
		t.Fatalf("unmet requirement should fail once: %v", fails)
	}

	ghost := []requirement{mustReq(t, "BenchmarkNope:ns<=1x")}
	if fails := compareReports(&strings.Builder{}, old, new, 1.25, 1.25, ghost); len(fails) != 1 {
		t.Fatalf("requirement on a missing benchmark must fail (typo guard): %v", fails)
	}
}

func mustReq(t *testing.T, s string) requirement {
	t.Helper()
	req, err := parseRequire(s)
	if err != nil {
		t.Fatal(err)
	}
	return req
}
