// Command skewload is a deterministic load generator for a live skewd or
// skewfleet daemon: it slams POST /jobs with a seeded arrival pattern and
// reports admission throughput, fsync amortization, and admission latency
// quantiles — the observables the journal group-commit work moves.
//
// Usage:
//
//	skewload -addr http://127.0.0.1:7077 -design d.json -jobs 64 -clients 8
//	skewload -addr ... -design d.json -pattern hotkey -tenants 8 -seed 3
//
// The tenant of each request is drawn from a seeded generator before any
// client starts, so a (seed, pattern, jobs) triple always produces the
// same request sequence whatever the goroutine scheduling:
//
//	uniform  every tenant equally likely
//	hotkey   one hot tenant takes -hot of the traffic, the rest uniform
//
// After the run every acknowledged job id is fetched back; an acked id
// the daemon no longer knows is a lost job and exits 1 — the load run
// doubles as a durability check. Results go to stdout both human-readable
// and as "OBSMETRIC name=value" lines for cmd/benchjson:
//
//	OBSMETRIC skewload.jobs_per_sec=412.7
//	OBSMETRIC skewload.fsyncs_per_job=0.18
//	OBSMETRIC skewload.admit_p99_us=1834
//
// Exit codes: 0 success, 1 lost/failed jobs or no successful admissions,
// 2 usage error.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"skewvar/internal/obs"
)

const (
	exitFailure = 1
	exitUsage   = 2
)

func main() {
	addr := flag.String("addr", "", "base URL of a running skewd/skewfleet, e.g. http://127.0.0.1:7077 (required)")
	designPath := flag.String("design", "", "design document to submit with every job (required)")
	jobs := flag.Int("jobs", 64, "total jobs to submit")
	clients := flag.Int("clients", 8, "concurrent submitters")
	pattern := flag.String("pattern", "uniform", "tenant arrival pattern: uniform or hotkey")
	tenants := flag.Int("tenants", 4, "distinct tenants (X-Tenant values t0..tN-1)")
	hot := flag.Float64("hot", 0.8, "traffic share of tenant t0 under -pattern hotkey")
	seed := flag.Int64("seed", 1, "seed for the arrival pattern")
	flow := flag.String("flow", "local", "flow requested for every job")
	pairs := flag.Int("pairs", 40, "pairs knob for every job")
	iters := flag.Int("iters", 2, "iters knob for every job")
	retries := flag.Int("retries", 50, "max retries per job on 429/503 backpressure")
	flag.Parse()

	if *addr == "" || *designPath == "" {
		usagef("-addr and -design are required")
	}
	if *jobs < 1 || *clients < 1 || *tenants < 1 {
		usagef("-jobs, -clients, and -tenants must be >= 1")
	}
	design, err := os.ReadFile(*designPath)
	if err != nil {
		fatalf("reading design: %v", err)
	}
	body, err := json.Marshal(map[string]interface{}{
		"design": json.RawMessage(design), "flow": *flow, "pairs": *pairs, "iters": *iters,
	})
	if err != nil {
		fatalf("encoding job body: %v", err)
	}

	// The whole arrival schedule is drawn up front from one seeded
	// generator: the i-th job's tenant is fixed before any client runs.
	rng := rand.New(rand.NewSource(*seed))
	tenantOf := make([]string, *jobs)
	for i := range tenantOf {
		switch *pattern {
		case "uniform":
			tenantOf[i] = fmt.Sprintf("t%d", rng.Intn(*tenants))
		case "hotkey":
			if rng.Float64() < *hot || *tenants == 1 {
				tenantOf[i] = "t0"
			} else {
				tenantOf[i] = fmt.Sprintf("t%d", 1+rng.Intn(*tenants-1))
			}
		default:
			usagef("unknown -pattern %q (want uniform or hotkey)", *pattern)
		}
	}

	before, err := fetchMetrics(*addr)
	if err != nil {
		fatalf("fetching /metrics: %v", err)
	}

	rec := obs.New()
	lat := rec.Histogram("skewload.admit_ns")
	var acked sync.Map // id -> true
	var ackedN, rejected429, rejected503, failed atomic.Int64

	start := time.Now()
	runClients(*clients, *jobs, func(i int) {
		id, status := submitWithRetry(*addr, tenantOf[i], body, *retries, lat)
		switch {
		case id != "":
			acked.Store(id, true)
			ackedN.Add(1)
		case status == http.StatusTooManyRequests:
			rejected429.Add(1)
		case status == http.StatusServiceUnavailable:
			rejected503.Add(1)
		default:
			failed.Add(1)
		}
	})
	elapsed := time.Since(start)

	after, err := fetchMetrics(*addr)
	if err != nil {
		fatalf("fetching /metrics after the run: %v", err)
	}

	// Durability audit: every acknowledged id must still be known.
	lost := 0
	acked.Range(func(k, _ interface{}) bool {
		resp, err := http.Get(*addr + "/jobs/" + k.(string))
		if err != nil || resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "skewload: acked job %s not retrievable (err=%v)\n", k, err)
			lost++
		}
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return true
	})

	n := ackedN.Load()
	fsyncs := after.Counters["serve.journal.fsyncs"] - before.Counters["serve.journal.fsyncs"]
	throttled := after.Counters["serve.jobs.rejected.ratelimited"] - before.Counters["serve.jobs.rejected.ratelimited"]
	h := rec.Snapshot().Histograms["skewload.admit_ns"]
	jobsPerSec := float64(n) / elapsed.Seconds()
	fsyncsPerJob := 0.0
	if n > 0 {
		fsyncsPerJob = float64(fsyncs) / float64(n)
	}

	fmt.Printf("skewload: %d/%d jobs admitted in %v (%.1f jobs/s), %d fsyncs (%.3f per job), 429=%d 503=%d failed=%d lost=%d\n",
		n, *jobs, elapsed.Round(time.Millisecond), jobsPerSec, fsyncs, fsyncsPerJob,
		rejected429.Load(), rejected503.Load(), failed.Load(), lost)
	fmt.Printf("skewload: admission latency p50=%dus p95=%dus p99=%dus\n",
		h.Quantile(0.50)/1000, h.Quantile(0.95)/1000, h.Quantile(0.99)/1000)

	fmt.Printf("OBSMETRIC skewload.jobs_per_sec=%.3f skewload.fsyncs_per_sec=%.3f skewload.fsyncs_per_job=%.4f\n",
		jobsPerSec, float64(fsyncs)/elapsed.Seconds(), fsyncsPerJob)
	fmt.Printf("OBSMETRIC skewload.admit_p50_us=%d skewload.admit_p95_us=%d skewload.admit_p99_us=%d\n",
		h.Quantile(0.50)/1000, h.Quantile(0.95)/1000, h.Quantile(0.99)/1000)
	fmt.Printf("OBSMETRIC skewload.acked=%d skewload.rejected_429=%d skewload.throttled_429s=%d skewload.lost=%d\n",
		n, rejected429.Load(), throttled, lost)

	if lost > 0 || failed.Load() > 0 || n == 0 {
		os.Exit(exitFailure)
	}
}

// runClients fans fn out over a bounded pool of client goroutines pulling
// job indices from a shared counter; it returns only after every index
// has been processed, so the pool is fully drained.
func runClients(clients, jobs int, fn func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= jobs {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// submitWithRetry posts one job, retrying backpressure rejections with a
// short linear backoff. Only the final, successful attempt's round trip
// is recorded in the latency histogram — retries measure the server's
// queue, not its admission path. Returns the acked id ("" on failure)
// and the last HTTP status.
func submitWithRetry(addr, tenant string, body []byte, retries int, lat *obs.Histogram) (string, int) {
	status := 0
	for attempt := 0; attempt <= retries; attempt++ {
		req, err := http.NewRequest("POST", addr+"/jobs", bytes.NewReader(body))
		if err != nil {
			return "", 0
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		t0 := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", 0
		}
		rt := time.Since(t0)
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
		if status == http.StatusAccepted {
			lat.Observe(int64(rt))
			var m map[string]string
			if json.Unmarshal(b, &m) == nil && m["id"] != "" {
				return m["id"], status
			}
			return "", status
		}
		if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
			return "", status
		}
		time.Sleep(time.Duration(attempt+1) * 2 * time.Millisecond)
	}
	return "", status
}

// fetchMetrics reads the daemon's /metrics snapshot (skewfleet serves the
// merged fold of its replicas, so the fsync counters aggregate the same
// way).
func fetchMetrics(addr string) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&snap)
	return snap, err
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewload: "+format+"\n", args...)
	os.Exit(exitFailure)
}

func usagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewload: "+format+"\n", args...)
	os.Exit(exitUsage)
}
