// Command skewopt runs the paper's optimization flows on a design: the
// LP-guided global optimization, the model-guided local iterative
// optimization, or both in sequence (the full framework).
//
// Usage:
//
//	skewopt -design cls1v1.json -flow global-local -model models.json -o optimized.json
//	skewopt -case CLS1v1 -ffs 420 -flow all
//	skewopt -case CLS1v1 -flow all -checkpoint run.ckpt -timeout 10m
//	skewopt -case CLS1v1 -flow all -checkpoint run.ckpt -resume
//
// Exit codes: 0 success, 1 flow failure, 2 usage error, 3 interrupted
// (signal or -timeout; a -checkpoint file, if enabled, holds the progress).
// A run that survived faults prints a DEGRADED warning line on stderr with
// per-class fault counts and still exits 0 — the result is valid, just not
// everything the flow attempted.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers, served behind -pprof
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"skewvar/internal/core"
	"skewvar/internal/ctree"
	"skewvar/internal/edaio"
	"skewvar/internal/exp"
	"skewvar/internal/faults"
	"skewvar/internal/obs"
	"skewvar/internal/report"
	"skewvar/internal/resilience"
	"skewvar/internal/sta"
	"skewvar/internal/testgen"
)

const (
	exitFlowFailure = 1
	exitUsage       = 2
	exitInterrupted = 3
)

func main() {
	designPath := flag.String("design", "", "input design JSON (from gentest)")
	caseName := flag.String("case", "", "generate a built-in testcase instead: CLS1v1, CLS1v2, CLS2v1")
	ffs := flag.Int("ffs", 0, "flip-flop count for -case (0 = default)")
	flow := flag.String("flow", "global-local", "flow: global, local, global-local or all")
	modelPath := flag.String("model", "", "trained model bundle (from trainml); trains a quick model if empty")
	pairs := flag.Int("pairs", 300, "top critical pairs in the objective")
	iters := flag.Int("iters", 12, "local-optimization iteration cap")
	out := flag.String("o", "", "write the optimized design JSON here")
	checkpoint := flag.String("checkpoint", "", "checkpoint file for periodic progress saves")
	resume := flag.Bool("resume", false, "resume from the -checkpoint file")
	ckptEvery := flag.Int("checkpoint-every", 1, "local iterations between checkpoint saves")
	timeout := flag.Duration("timeout", 0, "overall flow deadline (0 = none)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker count for per-corner STA and concurrent move trials (1 = exact serial paths; results are identical at any -j)")
	faultSpec := flag.String("faults", "", "deterministic fault injection spec, e.g. 'lp-solve:first=1,checkpoint-write:p=0.5' (testing)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault injection")
	tracePath := flag.String("trace", "", "write a JSONL run trace here (docs/OBSERVABILITY.md)")
	metricsPath := flag.String("metrics", "", "write a JSON metrics snapshot here")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060 or 127.0.0.1:0)")
	flag.Parse()

	// Context: Ctrl-C / SIGTERM and -timeout both cancel the flow at the
	// next iteration boundary; the best-so-far result is still reported.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var stages []string
	switch *flow {
	case "all":
		stages = nil // all three
	case "global", "local", "global-local":
		stages = []string{*flow}
	default:
		usagef("unknown flow %q (want global, local, global-local or all)", *flow)
	}
	inj, err := faults.Parse(*faultSpec, *faultSeed)
	if err != nil {
		usagef("bad -faults spec: %v", err)
	}
	if *resume && *checkpoint == "" {
		usagef("-resume needs -checkpoint")
	}

	// Instrumentation is opt-in: the recorder stays nil (every obs call a
	// no-op) unless a sink was requested.
	var rec *obs.Recorder
	if *tracePath != "" || *metricsPath != "" {
		rec = obs.New()
	}
	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			usagef("-pprof %s: %v", *pprofAddr, err)
		}
		fmt.Fprintf(os.Stderr, "skewopt: pprof on http://%s/debug/pprof/\n", ln.Addr())
		// The pprof server must outlive every flow stage, so it cannot run
		// inside the bounded worker pools; it dies with the process.
		//lint:ignore poolbound pprof listener is process-lifetime by design
		go func() { _ = http.Serve(ln, nil) }()
	}

	d, tm := loadDesign(*designPath, *caseName, *ffs)
	_, ch := exp.Technology()
	model := loadModel(ctx, *modelPath)

	var cp *core.Checkpoint
	if *resume {
		cp, err = core.LoadCheckpoint(*checkpoint)
		if err != nil {
			// A truncated or bit-flipped checkpoint must not strand the
			// run: warn and start fresh — the flow is deterministic, so a
			// fresh run reaches the same result, just without the head
			// start.
			fmt.Fprintf(os.Stderr, "skewopt: resume: checkpoint unusable (%v); starting fresh\n", err)
			cp = nil
		} else {
			fmt.Fprintf(os.Stderr, "skewopt: resuming from %s (done: %v, stage %q at iter %d)\n",
				*checkpoint, cp.Done, cp.Stage, cp.Iter)
		}
	}

	if *jobs < 1 {
		usagef("-j must be >= 1 (got %d)", *jobs)
	}
	tm.Workers = *jobs
	pairSet := d.TopPairs(*pairs)
	a0 := tm.Analyze(d.Tree)
	alphas := sta.Alphas(a0, pairSet)
	fmt.Printf("design %s: %d sinks, %d pairs (top %d used), alphas %.3v\n",
		d.Name, len(d.Tree.Sinks()), len(d.Pairs), len(pairSet), alphas)

	res, err := core.RunFlows(ctx, tm, ch, d, model, core.FlowConfig{
		TopPairs: *pairs,
		Global:   core.GlobalConfig{MaxPairsPerLP: *pairs},
		Local:    core.LocalConfig{MaxIters: *iters},
		Only:     stages,
		Workers:  *jobs,
		Faults:   inj,
		Checkpoint: core.CheckpointConfig{
			Path:       *checkpoint,
			EveryIters: *ckptEvery,
		},
		Resume: cp,
		Obs:    rec,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "skewopt: "+format+"\n", args...)
		},
	})
	// Sinks are written for interrupted runs too: a canceled flow's partial
	// trace is often exactly what the operator wants to look at.
	writeObs := func() bool {
		ok := true
		if *tracePath != "" {
			if err := rec.WriteTrace(*tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "skewopt: writing trace: %v\n", err)
				ok = false
			}
		}
		if *metricsPath != "" {
			if err := rec.WriteMetrics(*metricsPath); err != nil {
				fmt.Fprintf(os.Stderr, "skewopt: writing metrics: %v\n", err)
				ok = false
			}
		}
		return ok
	}
	interrupted := errors.Is(err, resilience.ErrCanceled)
	if err != nil && !interrupted {
		fatalf("flows: %v", err)
	}
	if res == nil {
		fatalf("flows returned no result")
	}
	obsOK := writeObs()

	tb := &report.Table{
		Title:   "skew variation results",
		Headers: []string{"Flow", "Variation(ps)", "[norm]", "Skew@c0", "Skew@c1", "Skew@c2/3", "#Cells", "Power(mW)"},
	}
	addRow(tb, "orig", res.Orig)
	final := res.Trees["orig"]
	for _, stage := range core.FlowStages {
		tree, ok := res.Trees[stage]
		if !ok {
			continue
		}
		var m core.Metrics
		switch stage {
		case "global":
			m = res.Global
		case "local":
			m = res.Local
		case "global-local":
			m = res.GLocal
		}
		addRow(tb, stage, m)
		final = tree
	}
	fmt.Println(tb.Render())

	if res.Degraded {
		fmt.Fprintf(os.Stderr, "skewopt: DEGRADED: flow absorbed faults (%s); result is valid but reduced\n",
			resilience.FormatCounts(res.Faults))
	}
	if *out != "" && final != nil {
		od := d.Clone()
		od.Tree = final
		if err := edaio.AtomicWriteFile(*out, func(w io.Writer) error {
			return edaio.WriteDesign(w, od)
		}); err != nil {
			fatalf("writing optimized design: %v", err)
		}
	}
	if interrupted {
		fmt.Fprintf(os.Stderr, "skewopt: interrupted (%v); best-so-far result reported above\n", err)
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "skewopt: rerun with -resume to continue from %s\n", *checkpoint)
		}
		os.Exit(exitInterrupted)
	}
	// A requested -trace/-metrics artifact that failed to write fails the
	// run, like -o does; interrupted runs keep exit 3 (the warning stands).
	if !obsOK {
		os.Exit(exitFlowFailure)
	}
}

func addRow(tb *report.Table, flow string, m core.Metrics) {
	skew23 := "-"
	if len(m.SkewPS) > 2 {
		skew23 = fmt.Sprintf("%.0f", m.SkewPS[2])
	}
	tb.AddRowf(flow,
		fmt.Sprintf("%.0f", m.SumVarPS), fmt.Sprintf("[%.2f]", m.Norm),
		fmt.Sprintf("%.0f", m.SkewPS[0]), fmt.Sprintf("%.0f", m.SkewPS[1]),
		skew23, m.NumCells, fmt.Sprintf("%.3f", m.PowerMW))
}

func loadDesign(path, caseName string, ffs int) (*ctree.Design, *sta.Timer) {
	base, _ := exp.Technology()
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("opening %s: %v", path, err)
		}
		defer f.Close()
		d, err := edaio.ReadDesign(f, edaio.WithCells(func(name string) bool {
			return base.CellByName(name) != nil
		}))
		if err != nil {
			fatalf("reading design: %v", err)
		}
		view, err := base.SubCorners(d.CornerNames...)
		if err != nil {
			fatalf("corner view: %v", err)
		}
		return d, sta.New(view)
	}
	var v testgen.Variant
	switch caseName {
	case "CLS1v1":
		v = testgen.CLS1v1(ffs)
	case "CLS1v2":
		v = testgen.CLS1v2(ffs)
	case "CLS2v1":
		v = testgen.CLS2v1(ffs)
	default:
		usagef("need -design or a valid -case (got %q)", caseName)
	}
	d, tm, err := testgen.Build(base, v)
	if err != nil {
		fatalf("building %s: %v", v.Name, err)
	}
	return d, tm
}

func loadModel(ctx context.Context, path string) *core.MLStageModel {
	if path == "" {
		fmt.Fprintln(os.Stderr, "skewopt: no -model given; training a quick ridge predictor")
		t, _ := exp.Technology()
		m, err := core.TrainStageModel(ctx, t, core.TrainConfig{
			Kind: "ridge", Cases: 12, MovesPerCase: 12, Seed: 1,
		})
		if err != nil {
			fatalf("quick training: %v", err)
		}
		return m
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	m, err := core.LoadStageModel(f)
	if err != nil {
		fatalf("loading model: %v", err)
	}
	return m
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewopt: "+format+"\n", args...)
	os.Exit(exitFlowFailure)
}

func usagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewopt: "+format+"\n", args...)
	os.Exit(exitUsage)
}
