// Command skewopt runs the paper's optimization flows on a design: the
// LP-guided global optimization, the model-guided local iterative
// optimization, or both in sequence (the full framework).
//
// Usage:
//
//	skewopt -design cls1v1.json -flow global-local -model models.json -o optimized.json
//	skewopt -case CLS1v1 -ffs 420 -flow all
package main

import (
	"flag"
	"fmt"
	"os"

	"skewvar/internal/core"
	"skewvar/internal/ctree"
	"skewvar/internal/edaio"
	"skewvar/internal/exp"
	"skewvar/internal/report"
	"skewvar/internal/sta"
	"skewvar/internal/testgen"
)

func main() {
	designPath := flag.String("design", "", "input design JSON (from gentest)")
	caseName := flag.String("case", "", "generate a built-in testcase instead: CLS1v1, CLS1v2, CLS2v1")
	ffs := flag.Int("ffs", 0, "flip-flop count for -case (0 = default)")
	flow := flag.String("flow", "global-local", "flow: global, local, global-local or all")
	modelPath := flag.String("model", "", "trained model bundle (from trainml); trains a quick model if empty")
	pairs := flag.Int("pairs", 300, "top critical pairs in the objective")
	iters := flag.Int("iters", 12, "local-optimization iteration cap")
	out := flag.String("o", "", "write the optimized design JSON here")
	flag.Parse()

	d, tm := loadDesign(*designPath, *caseName, *ffs)
	_, ch := exp.Technology()
	model := loadModel(*modelPath)

	pairSet := d.TopPairs(*pairs)
	a0 := tm.Analyze(d.Tree)
	alphas := sta.Alphas(a0, pairSet)
	fmt.Printf("design %s: %d sinks, %d pairs (top %d used), alphas %.3v\n",
		d.Name, len(d.Tree.Sinks()), len(d.Pairs), len(pairSet), alphas)

	tb := &report.Table{
		Title:   "skew variation results",
		Headers: []string{"Flow", "Variation(ps)", "[norm]", "Skew@c0", "Skew@c1", "Skew@c2/3", "#Cells", "Power(mW)"},
	}
	orig := core.Snapshot(tm, d.Tree, pairSet, alphas)
	orig.Norm = 1
	addRow(tb, "orig", orig)

	var final *ctree.Tree
	switch *flow {
	case "all":
		res, err := core.RunFlows(tm, ch, d, model, core.FlowConfig{
			TopPairs: *pairs,
			Global:   core.GlobalConfig{MaxPairsPerLP: *pairs},
			Local:    core.LocalConfig{MaxIters: *iters},
		})
		if err != nil {
			fatalf("flows: %v", err)
		}
		addRow(tb, "global", res.Global)
		addRow(tb, "local", res.Local)
		addRow(tb, "global-local", res.GLocal)
		final = res.Trees["global-local"]
	case "global", "local", "global-local":
		tree := d.Tree
		if *flow == "global" || *flow == "global-local" {
			g, err := core.GlobalOpt(tm, ch, d, alphas, core.GlobalConfig{TopPairs: *pairs, MaxPairsPerLP: *pairs})
			if err != nil {
				fatalf("global: %v", err)
			}
			tree = g.Tree
		}
		if *flow == "local" || *flow == "global-local" {
			dl := d.Clone()
			dl.Tree = tree.Clone()
			l, err := core.LocalOpt(tm, dl, alphas, core.LocalConfig{
				Model: model, TopPairs: *pairs, MaxIters: *iters,
			})
			if err != nil {
				fatalf("local: %v", err)
			}
			tree = l.Tree
		}
		m := core.Snapshot(tm, tree, pairSet, alphas)
		m.Norm = m.SumVarPS / orig.SumVarPS
		addRow(tb, *flow, m)
		final = tree
	default:
		fatalf("unknown flow %q", *flow)
	}
	fmt.Println(tb.Render())

	if *out != "" && final != nil {
		od := d.Clone()
		od.Tree = final
		f, err := os.Create(*out)
		if err != nil {
			fatalf("creating %s: %v", *out, err)
		}
		defer f.Close()
		if err := edaio.WriteDesign(f, od); err != nil {
			fatalf("writing optimized design: %v", err)
		}
	}
}

func addRow(tb *report.Table, flow string, m core.Metrics) {
	skew23 := "-"
	if len(m.SkewPS) > 2 {
		skew23 = fmt.Sprintf("%.0f", m.SkewPS[2])
	}
	tb.AddRowf(flow,
		fmt.Sprintf("%.0f", m.SumVarPS), fmt.Sprintf("[%.2f]", m.Norm),
		fmt.Sprintf("%.0f", m.SkewPS[0]), fmt.Sprintf("%.0f", m.SkewPS[1]),
		skew23, m.NumCells, fmt.Sprintf("%.3f", m.PowerMW))
}

func loadDesign(path, caseName string, ffs int) (*ctree.Design, *sta.Timer) {
	base, _ := exp.Technology()
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			fatalf("opening %s: %v", path, err)
		}
		defer f.Close()
		d, err := edaio.ReadDesign(f)
		if err != nil {
			fatalf("reading design: %v", err)
		}
		view, err := base.SubCorners(d.CornerNames...)
		if err != nil {
			fatalf("corner view: %v", err)
		}
		return d, sta.New(view)
	}
	var v testgen.Variant
	switch caseName {
	case "CLS1v1":
		v = testgen.CLS1v1(ffs)
	case "CLS1v2":
		v = testgen.CLS1v2(ffs)
	case "CLS2v1":
		v = testgen.CLS2v1(ffs)
	default:
		fatalf("need -design or a valid -case (got %q)", caseName)
	}
	d, tm, err := testgen.Build(base, v)
	if err != nil {
		fatalf("building %s: %v", v.Name, err)
	}
	return d, tm
}

func loadModel(path string) *core.MLStageModel {
	if path == "" {
		fmt.Fprintln(os.Stderr, "skewopt: no -model given; training a quick ridge predictor")
		t, _ := exp.Technology()
		m, err := core.TrainStageModel(t, core.TrainConfig{
			Kind: "ridge", Cases: 12, MovesPerCase: 12, Seed: 1,
		})
		if err != nil {
			fatalf("quick training: %v", err)
		}
		return m
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	m, err := core.LoadStageModel(f)
	if err != nil {
		fatalf("loading model: %v", err)
	}
	return m
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewopt: "+format+"\n", args...)
	os.Exit(1)
}
