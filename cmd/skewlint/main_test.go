package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module for the linter to chew on.
// maporder and poolbound are unscoped, so they fire in any module; the
// skewvar-scoped analyzers are covered by the corpus tests.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	if _, ok := files["go.mod"]; !ok {
		files["go.mod"] = "module lintprobe\n\ngo 1.22\n"
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// capture runs skewlint's entry point with stdout/stderr redirected to
// files, returning the exit code and both streams.
func capture(t *testing.T, args []string) (int, string, string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, outF, errF)
	out, _ := os.ReadFile(outF.Name())
	errb, _ := os.ReadFile(errF.Name())
	return code, string(out), string(errb)
}

const dirtySource = `package probe

func Sum(m map[int]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return total
}
`

const cleanSource = `package probe

func Sum(vs []float64) float64 {
	total := 0.0
	for _, v := range vs {
		total += v
	}
	return total
}
`

func TestExitCleanIsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped with -short")
	}
	dir := writeModule(t, map[string]string{"probe.go": cleanSource})
	code, out, stderr := capture(t, []string{"-dir", dir, "./..."})
	if code != 0 {
		t.Fatalf("exit = %d on a clean module, want 0\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean run produced output: %q", out)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped with -short")
	}
	dir := writeModule(t, map[string]string{"probe.go": dirtySource})
	code, out, stderr := capture(t, []string{"-dir", dir, "./..."})
	if code != 1 {
		t.Fatalf("exit = %d with findings, want 1\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if !strings.Contains(out, "[maporder]") {
		t.Errorf("finding line missing [maporder] tag:\n%s", out)
	}
	// Paths are reported relative to the module root for diff-stable output.
	if strings.Contains(out, dir) {
		t.Errorf("finding paths should be module-relative:\n%s", out)
	}
}

func TestExitLoadFailureIsTwo(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped with -short")
	}
	dir := writeModule(t, map[string]string{"probe.go": "package probe\nfunc broken( {\n"})
	code, _, stderr := capture(t, []string{"-dir", dir, "./..."})
	if code != 2 {
		t.Fatalf("exit = %d on an unparsable module, want 2\nstderr:\n%s", code, stderr)
	}
	if strings.TrimSpace(stderr) == "" {
		t.Error("load failure should explain itself on stderr")
	}
}

func TestBadFlagIsTwo(t *testing.T) {
	code, _, _ := capture(t, []string{"-definitely-not-a-flag"})
	if code != 2 {
		t.Fatalf("exit = %d on a bad flag, want 2", code)
	}
}

func TestJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped with -short")
	}
	dir := writeModule(t, map[string]string{"probe.go": dirtySource})
	code, out, stderr := capture(t, []string{"-dir", dir, "-json", "./..."})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr:\n%s", code, stderr)
	}
	var report struct {
		Tool     string `json:"tool"`
		Count    int    `json:"count"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out)
	}
	if report.Tool != "skewlint" || report.Count != len(report.Findings) || report.Count == 0 {
		t.Errorf("bad report header: tool=%q count=%d findings=%d", report.Tool, report.Count, len(report.Findings))
	}
	for _, f := range report.Findings {
		if f.Analyzer != "maporder" || f.File != "probe.go" || f.Line == 0 {
			t.Errorf("bad finding in report: %+v", f)
		}
	}
}

func TestJSONCleanReportHasEmptyArray(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped with -short")
	}
	dir := writeModule(t, map[string]string{"probe.go": cleanSource})
	code, out, _ := capture(t, []string{"-dir", dir, "-json", "./..."})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, `"findings": []`) {
		t.Errorf("clean JSON report must carry an empty array, not null:\n%s", out)
	}
}

func TestListAnalyzers(t *testing.T) {
	code, out, _ := capture(t, []string{"-list"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{
		"maporder", "detsource", "ctxflow", "errwrap", "poolbound", "obsclock",
		"lockscope", "ackorder", "deferbal",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing %s:\n%s", name, out)
		}
	}
}

func TestOnlyUnknownNameIsTwo(t *testing.T) {
	code, _, stderr := capture(t, []string{"-only", "maporder,nosuch", "-list"})
	if code != 2 {
		t.Fatalf("exit = %d on an unknown -only name, want 2", code)
	}
	if !strings.Contains(stderr, `unknown analyzer "nosuch"`) {
		t.Errorf("stderr should name the unknown analyzer:\n%s", stderr)
	}
}

func TestOnlyListShowsSubset(t *testing.T) {
	code, out, _ := capture(t, []string{"-only", "lockscope,deferbal", "-list"})
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"lockscope", "deferbal"} {
		if !strings.Contains(out, name) {
			t.Errorf("-only -list missing selected analyzer %s:\n%s", name, out)
		}
	}
	if strings.Contains(out, "maporder") {
		t.Errorf("-only -list leaked an unselected analyzer:\n%s", out)
	}
}

func TestOnlyRestrictsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped with -short")
	}
	// The module is dirty for maporder, but maporder is not selected.
	dir := writeModule(t, map[string]string{"probe.go": dirtySource})
	code, out, stderr := capture(t, []string{"-dir", dir, "-only", "poolbound", "./..."})
	if code != 0 {
		t.Fatalf("exit = %d with the offending analyzer deselected, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out, stderr)
	}
}

// lockedSleepSource blocks while holding a mutex — the lockscope shape.
// It lives at skewvar/internal/serve in a throwaway module that borrows
// the real module path, which is what puts it in the analyzer's scope.
const lockedSleepSource = `package serve

import (
	"sync"
	"time"
)

type gate struct{ mu sync.Mutex }

func (g *gate) pause() {
	g.mu.Lock()
	time.Sleep(time.Millisecond)
	g.mu.Unlock()
}
`

func TestScopedAnalyzerJSONReport(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped with -short")
	}
	dir := writeModule(t, map[string]string{
		"go.mod":                  "module skewvar\n\ngo 1.22\n",
		"internal/serve/probe.go": lockedSleepSource,
	})
	code, out, stderr := capture(t, []string{
		"-dir", dir, "-json", "-only", "lockscope,ackorder,deferbal", "./...",
	})
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	var report struct {
		Count    int `json:"count"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Message  string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal([]byte(out), &report); err != nil {
		t.Fatalf("report is not JSON: %v\n%s", err, out)
	}
	if report.Count != 1 || len(report.Findings) != 1 {
		t.Fatalf("want exactly one lockscope finding, got %d:\n%s", report.Count, out)
	}
	f := report.Findings[0]
	if f.Analyzer != "lockscope" || f.File != "internal/serve/probe.go" {
		t.Errorf("bad finding: %+v", f)
	}
	if !strings.Contains(f.Message, "Sleep") {
		t.Errorf("finding should name the blocking call: %q", f.Message)
	}
}

func TestSuppressionRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list; skipped with -short")
	}
	suppressed := strings.Replace(dirtySource,
		"total += v",
		"total += v //lint:ignore maporder probe: order drift acceptable", 1)
	dir := writeModule(t, map[string]string{"probe.go": suppressed})
	code, out, stderr := capture(t, []string{"-dir", dir, "./..."})
	if code != 0 {
		t.Fatalf("suppressed module should be clean, exit = %d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
}
