// Command skewlint runs the repository's invariant analyzers (package
// internal/analysis) over a module and reports findings as
//
//	file:line: [analyzer] message
//
// Exit codes (documented alongside the flow exit codes in
// docs/ROBUSTNESS.md):
//
//	0 — clean: no findings
//	1 — findings reported
//	2 — the analysis itself failed (bad flags, unloadable packages)
//
// Usage:
//
//	skewlint [-dir root] [-json] [-list] [-only a,b] [packages...]
//
// Packages default to ./... relative to -dir. -json emits the findings as
// a machine-readable report (see make lint-fix-report); -list prints the
// analyzer names and one-line docs; -only restricts the run to a
// comma-separated subset of analyzers (make lint-new uses it for fast
// iteration on the flow-sensitive checks).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"skewvar/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("skewlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to analyze")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: skewlint [-dir root] [-json] [-list] [-only a,b] [packages...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analysis.Suite()
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "skewlint: -only names unknown analyzer %q\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Dir: *dir, Patterns: fs.Args()})
	if err != nil {
		fmt.Fprintf(stderr, "skewlint: %v\n", err)
		return 2
	}
	for _, p := range pkgs {
		for _, te := range p.TypeErrs {
			fmt.Fprintf(stderr, "skewlint: %s: type-check: %v\n", p.Path, te)
		}
	}
	findings := analysis.Apply(pkgs, suite)
	if findings == nil {
		findings = []analysis.Finding{} // JSON reports carry [] rather than null
	}
	// Report paths relative to the module root: stable across checkouts,
	// which keeps lint-fix-report JSON diffable over time.
	if abs, err := filepath.Abs(*dir); err == nil {
		for i := range findings {
			if rel, err := filepath.Rel(abs, findings[i].File); err == nil && !strings.HasPrefix(rel, "..") {
				findings[i].File = rel
			}
		}
	}
	if *asJSON {
		report := struct {
			Tool     string             `json:"tool"`
			Count    int                `json:"count"`
			Findings []analysis.Finding `json:"findings"`
		}{Tool: "skewlint", Count: len(findings), Findings: findings}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "skewlint: encoding report: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(stderr, "skewlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}
