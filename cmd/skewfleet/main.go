// Command skewfleet runs a fault-tolerant skewd fleet in one process: a
// coordinator sharding jobs across N replicas by consistent hashing,
// with heartbeat failure detection, circuit-breaker quarantine, and
// journal-based work stealing when a replica dies (docs/ROBUSTNESS.md).
//
// Usage:
//
//	skewfleet -addr 127.0.0.1:7078 -spool /var/lib/skewfleet -replicas 3
//	skewfleet -addr 127.0.0.1:0 -spool ./spool -replicas 3 -workers 2
//
// API (skewd's, plus fleet introspection and chaos admin):
//
//	POST /jobs                    submit a job {design, flow, pairs, ...}
//	GET  /jobs/{id}               job status (+ owning replica)
//	GET  /jobs/{id}/result        optimized design of a finished job
//	GET  /replicas                per-replica health/quarantine/load
//	GET  /healthz /readyz /metrics
//	POST /admin/crash/{replica}   crash-stop a replica (chaos testing)
//	POST /admin/restart/{replica} restart it (journal replays; stolen
//	                              jobs stay with their thieves)
//
// Lifecycle: SIGTERM/SIGINT drains every replica; suspended jobs are
// journaled and resume on the next start. A restarted skewfleet replays
// every replica's journal and completes any steal a crash interrupted.
//
// Exit codes: 0 clean drain, 1 startup/serve failure, 2 usage error,
// 3 drain did not settle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skewvar/internal/core"
	"skewvar/internal/exp"
	"skewvar/internal/faults"
	"skewvar/internal/fleet"
	"skewvar/internal/obs"
)

const (
	exitFailure   = 1
	exitUsage     = 2
	exitUnsettled = 3
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7078", "listen address (host:port; :0 picks a free port)")
	spool := flag.String("spool", "", "fleet spool root; replica i journals under <spool>/r<i> (required)")
	replicas := flag.Int("replicas", 3, "replica count")
	workers := flag.Int("workers", 2, "worker pool size per replica")
	queue := flag.Int("queue", 8, "max queued jobs per replica before dispatch moves on")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job deadline ceiling")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "per-replica drain budget")
	journalBatch := flag.Int("journal-batch", 1, "replica journal group-commit batch size (1 = fsync per record)")
	journalWindow := flag.Duration("journal-window", 0, "max wait for a replica journal batch to fill before flushing anyway")
	heartbeat := flag.Duration("heartbeat", 25*time.Millisecond, "heartbeat tick period")
	missThreshold := flag.Int("miss-threshold", 3, "consecutive missed heartbeats before a replica is declared dead")
	modelPath := flag.String("model", "", "trained model bundle (from trainml); trains a quick model if empty")
	faultSpec := flag.String("faults", "", "deterministic fault spec, e.g. 'replica-crash:at=2' (testing)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic faults and breaker jitter")
	metricsPath := flag.String("metrics", "", "also write the final fleet-merged metrics snapshot here on exit")
	flag.Parse()

	if *spool == "" {
		usagef("-spool is required")
	}
	if *replicas < 1 || *workers < 1 || *queue < 1 {
		usagef("-replicas, -workers, and -queue must be >= 1")
	}
	inj, err := faults.Parse(*faultSpec, *faultSeed)
	if err != nil {
		usagef("bad -faults spec: %v", err)
	}

	tech, ch := exp.Technology()
	model := loadModel(*modelPath)

	rec := obs.New()
	c, err := fleet.New(fleet.Config{
		SpoolDir:       *spool,
		Replicas:       *replicas,
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *jobTimeout,
		DrainTimeout:   *drainTimeout,
		JournalBatch:   *journalBatch,
		JournalWindow:  *journalWindow,
		HeartbeatEvery: *heartbeat,
		MissThreshold:  *missThreshold,
		Tech:           tech,
		Char:           ch,
		Model:          model,
		Faults:         inj,
		Obs:            rec,
		Seed:           *faultSeed,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "skewfleet: "+format+"\n", args...)
		},
	})
	if err != nil {
		fatalf("%v", err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listening on %s: %v", *addr, err)
	}
	c.StartHTTP(ln)
	// The address line is the readiness handshake for scripts and the e2e
	// harness (with -addr :0 it carries the picked port).
	fmt.Fprintf(os.Stderr, "skewfleet: listening on http://%s (spool %s, %d replicas)\n",
		ln.Addr(), *spool, *replicas)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "skewfleet: %v: draining\n", got)
	case err := <-c.AcceptErr():
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatalf("serve: %v", err)
		}
	}

	c.ShutdownHTTP()
	settled := c.Drain()
	if *metricsPath != "" {
		if err := obs.WriteSnapshot(*metricsPath, c.Metrics()); err != nil {
			fmt.Fprintf(os.Stderr, "skewfleet: writing metrics: %v\n", err)
			settled = false
		}
	}
	if !settled {
		fmt.Fprintln(os.Stderr, "skewfleet: drain did not settle; unfinished jobs remain journaled for the next start")
		os.Exit(exitUnsettled)
	}
}

func loadModel(path string) *core.MLStageModel {
	if path == "" {
		fmt.Fprintln(os.Stderr, "skewfleet: no -model given; training a quick ridge predictor")
		t, _ := exp.Technology()
		m, err := core.TrainStageModel(context.Background(), t, core.TrainConfig{
			Kind: "ridge", Cases: 12, MovesPerCase: 12, Seed: 1,
		})
		if err != nil {
			fatalf("quick training: %v", err)
		}
		return m
	}
	f, err := os.Open(path)
	if err != nil {
		fatalf("opening %s: %v", path, err)
	}
	defer f.Close()
	m, err := core.LoadStageModel(f)
	if err != nil {
		fatalf("loading model: %v", err)
	}
	return m
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewfleet: "+format+"\n", args...)
	os.Exit(exitFailure)
}

func usagef(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "skewfleet: "+format+"\n", args...)
	os.Exit(exitUsage)
}
