module skewvar

go 1.22
