// Package skewvar is a from-scratch Go reproduction of "A Global-Local
// Optimization Framework for Simultaneous Multi-Mode Multi-Corner Clock
// Skew Variation Reduction" (Han, Kahng, Lee, Li and Nath, DAC 2015).
//
// The repository implements the paper's contribution — an LP-guided global
// clock-network optimization plus a machine-learning-guided local iterative
// optimization that together minimize the sum of clock-skew variations
// across PVT corners — together with every substrate the paper depends on:
// a multi-corner NLDM technology model, a golden static timing analyzer
// (Elmore/D2M wire models, PERI slew propagation), a baseline clock-tree
// synthesizer, rectilinear Steiner routing, placement legalization, a
// bounded-variable simplex LP solver, ANN/SVR/HSM regressors, ECO engines,
// and the CLS1/CLS2 benchmark generators of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// experiment map, and EXPERIMENTS.md for reproduced-versus-paper results.
// The root-level benchmarks (bench_test.go) regenerate every table and
// figure of the paper's evaluation section.
package skewvar
