# Developer entry points. `make tier1` is the gate a change must pass:
# lint (go vet + skewlint) + build + the full test suite, then the suite
# again under the race detector in -short mode (which still runs a real
# optimization flow via the core stage-subset test, just not the
# multi-minute matrices), then the skewd crash/fault/drain end-to-end, the
# skewfleet replica-failover end-to-end, and the skewload group-commit
# load/durability end-to-end.

GO ?= go

.PHONY: tier1 vet lint lint-new lint-fix-report cover build test race serve-e2e fleet-e2e load-e2e journal-e2e bench bench-gate fuzz help

tier1: lint cover build test race serve-e2e fleet-e2e load-e2e journal-e2e bench-gate

vet:
	$(GO) vet ./...

# skewlint enforces the repo's machine-checked invariants (determinism,
# cancellation, error taxonomy, pooled concurrency — see docs/ANALYSIS.md).
# Exit codes: 0 clean, 1 findings, 2 analysis failure (docs/ROBUSTNESS.md).
lint: vet
	$(GO) run ./cmd/skewlint ./...

# Fast iteration on the flow-sensitive service-layer analyzers only
# (lockscope/ackorder/deferbal over serve, fleet, atomicio).
lint-new:
	$(GO) run ./cmd/skewlint -only lockscope,ackorder,deferbal ./...

# Machine-readable findings for tooling/triage: writes LINT_report.json and
# always exits 0 (the report is the artifact; `make lint` is the gate).
lint-fix-report:
	$(GO) run ./cmd/skewlint -json ./... > LINT_report.json || true
	@echo "wrote LINT_report.json"

# Per-package statement coverage (-short; the matrices don't change
# coverage). internal/obs carries a hard 70% floor — it is the measurement
# layer, and an unmeasured measurement layer is how silent trace corruption
# ships. Every other package is report-only in COVER_report.txt.
cover:
	$(GO) test -short -count=1 -cover ./... > COVER_report.txt || { cat COVER_report.txt; exit 1; }
	@cat COVER_report.txt
	@pct=$$(awk '$$2=="skewvar/internal/obs" && $$4=="coverage:" {print $$5}' COVER_report.txt | tr -d '%'); \
	if [ -z "$$pct" ]; then echo "cover: no coverage line for internal/obs"; exit 1; fi; \
	if ! awk -v p="$$pct" 'BEGIN {exit !(p+0 >= 70)}'; then \
		echo "cover: internal/obs coverage $$pct% is under the 70% floor"; exit 1; fi; \
	echo "cover: internal/obs coverage $$pct% (floor 70%); other packages report-only"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race pass runs -short (skips the multi-minute matrices but still
# drives a real optimization flow), then hammers the parallel-equivalence
# tests three extra times: the worker pools' bit-identical reduction is the
# invariant most worth catching a data race in.
race:
	$(GO) test -race -short ./...
	$(GO) test -race -count=3 -run 'Parallel' ./internal/sta/ ./internal/core/ ./internal/obs/ ./internal/faults/ ./internal/serve/

# skewd end-to-end: submit, kill -9 mid-job, restart, verify the resumed
# output is byte-identical to an uninterrupted run; plus the fault matrix
# (dead journal -> 500, worker panic -> isolated failure, wedged job ->
# deadline cancel) and the SIGTERM backpressure/drain/resume cycle; plus
# the warm-net-cache cycle (resubmit -> zero misses + identical bytes,
# restart -> cold cache + identical bytes).
serve-e2e:
	$(GO) test -run 'TestSkewd' -count=1 -v ./internal/clitest/
	$(GO) test -run 'TestNetCacheCrossJobReuse' -count=1 -v ./internal/serve/

# skewfleet end-to-end: crash a replica that owns a running job and verify
# a peer steals its journal and finishes it byte-identical to an
# uninterrupted single-node run (2 seeds x {1,3} replicas x {1,4} intra-job
# workers), plus the partition / delayed-heartbeat matrix (dispatch
# failover, breaker quarantine, false-positive death under fencing) with
# the no-job-lost-or-duplicated journal invariant checked after each run.
fleet-e2e:
	$(GO) test -run 'TestSkewfleet' -count=1 -v ./internal/clitest/

# skewload end-to-end: drive a live skewd over HTTP at fsync-per-line and
# group-commit settings, assert every acked job survives (the run audits
# durability by fetching every acked id back), group commit amortizes
# fsyncs, throughput doesn't regress, and the per-tenant rate limiter
# 429s a hot tenant without losing a job (docs/PERFORMANCE.md).
load-e2e:
	$(GO) test -run 'TestSkewload' -count=1 -v ./internal/clitest/

# Storage-fault end-to-end: the snapshot+compaction swap killed at every
# boundary, the deterministic disk-fault matrix (disk-full, fsync-error,
# read-corrupt, rename-torn) over compaction/restart/steal, the scrub's
# quarantine/heal pipeline, oversized-record replay, steals against
# compacted and half-swapped victims, and live servers crashing mid-swap.
# Every case audits the recovered admitted set against the pre-fault fold
# (docs/ROBUSTNESS.md, "Durable storage format").
journal-e2e:
	$(GO) test -run 'TestCompaction|TestScrub|TestCorruptSnapshot|TestOversizedRecordReplay|TestSpoolCLI|TestStealFrom|TestLiveCompact' -count=1 -v ./internal/serve/
	$(GO) test -run 'TestStealFromCompactedReplica' -count=1 -v ./internal/fleet/

# Parallel STA / concurrent-trial / group-commit / journal-replay
# benchmarks, recorded as benchstat-style records in BENCH_pr10.json
# (cmd/benchjson converts the bench text, derives per-group speedups
# against the j=1 serial baseline, and collects the OBSMETRIC gauges —
# cache hit rate, move accept rate, group-commit fsyncs per line — the
# benchmarks log from their untimed regions). `make bench-gate` diffs it
# against the committed BENCH_pr7.json and BENCH_pr9.json.
bench:
	$(GO) test -run '^$$' -bench 'Parallel' -benchmem -count=1 . | $(GO) run ./cmd/benchjson > BENCH_pr10.json

# Deterministic regression gate over the committed benchmark snapshots.
# First compare: the flat-kernel PR's headline claims stay enforced against
# the PR 7 baseline — cold serial STA at least 1.5x faster and 4x fewer
# allocations, warm serial STA allocation-free (<=64 allocs/op absorbs
# one-time pool warm-up inside the first measured iterations). Second
# compare: the checksummed-journal claim against the PR 9 baseline — the
# CRC32C frame the append path now pays costs at most 1.15x on the
# fsync-per-line batch=1 path (the loosened default thresholds absorb
# fsync-bound run-to-run noise on the batched variants; the explicit
# require carries the claim). Runs offline on the JSON files, so it is
# part of tier1.
bench-gate:
	$(GO) run ./cmd/benchjson -compare \
		-require 'BenchmarkSTAAnalyzeParallel/cold/j=1:ns<=0.667x,allocs<=0.25x' \
		-require 'BenchmarkSTAAnalyzeParallel/warm/j=1:allocs<=64' \
		BENCH_pr7.json BENCH_pr10.json
	$(GO) run ./cmd/benchjson -compare -max-ns-regress 1.5 -max-alloc-regress 4.0 \
		-require 'BenchmarkGroupCommitParallel/batch=1:ns<=1.15x' \
		BENCH_pr9.json BENCH_pr10.json

# 30-second fuzz pass over the design reader's validation layer.
fuzz:
	$(GO) test ./internal/edaio/ -run '^$$' -fuzz FuzzReadDesign -fuzztime 30s

help:
	@echo "tier1            lint + cover + build + test + race (the merge gate)"
	@echo "lint             go vet + skewlint invariant analyzers (docs/ANALYSIS.md)"
	@echo "lint-new         only the flow-sensitive analyzers (lockscope/ackorder/deferbal)"
	@echo "lint-fix-report  skewlint -json -> LINT_report.json (never fails the build)"
	@echo "cover            -short coverage -> COVER_report.txt; internal/obs must be >= 70%"
	@echo "build            go build ./..."
	@echo "test             go test ./..."
	@echo "race             -short suite under -race, then 3x the Parallel equivalence tests"
	@echo "serve-e2e        skewd crash/fault/drain end-to-end (kill -9 resume, fault matrix)"
	@echo "fleet-e2e        skewfleet failover end-to-end (replica kill -> journal steal, partitions)"
	@echo "load-e2e         skewload load/durability end-to-end (group commit vs per-line fsync)"
	@echo "journal-e2e      storage-fault end-to-end (compaction crash boundaries, disk-fault matrix, scrub)"
	@echo "bench            parallel STA + group-commit + journal-replay benchmarks -> BENCH_pr10.json"
	@echo "bench-gate       compare BENCH_pr7/pr9 vs BENCH_pr10 (regressions + kernel + checksum-cost targets)"
	@echo "fuzz             30s fuzz of the design reader"
