# Developer entry points. `make tier1` is the gate a change must pass:
# vet + build + the full test suite, then the suite again under the race
# detector in -short mode (which still runs a real optimization flow via
# the core stage-subset test, just not the multi-minute matrices).

GO ?= go

.PHONY: tier1 vet build test race fuzz

tier1: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# 30-second fuzz pass over the design reader's validation layer.
fuzz:
	$(GO) test ./internal/edaio/ -run '^$$' -fuzz FuzzReadDesign -fuzztime 30s
