# Developer entry points. `make tier1` is the gate a change must pass:
# lint (go vet + skewlint) + build + the full test suite, then the suite
# again under the race detector in -short mode (which still runs a real
# optimization flow via the core stage-subset test, just not the
# multi-minute matrices).

GO ?= go

.PHONY: tier1 vet lint lint-fix-report build test race bench fuzz help

tier1: lint build test race

vet:
	$(GO) vet ./...

# skewlint enforces the repo's machine-checked invariants (determinism,
# cancellation, error taxonomy, pooled concurrency — see docs/ANALYSIS.md).
# Exit codes: 0 clean, 1 findings, 2 analysis failure (docs/ROBUSTNESS.md).
lint: vet
	$(GO) run ./cmd/skewlint ./...

# Machine-readable findings for tooling/triage: writes LINT_report.json and
# always exits 0 (the report is the artifact; `make lint` is the gate).
lint-fix-report:
	$(GO) run ./cmd/skewlint -json ./... > LINT_report.json || true
	@echo "wrote LINT_report.json"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race pass runs -short (skips the multi-minute matrices but still
# drives a real optimization flow), then hammers the parallel-equivalence
# tests three extra times: the worker pools' bit-identical reduction is the
# invariant most worth catching a data race in.
race:
	$(GO) test -race -short ./...
	$(GO) test -race -count=3 -run 'Parallel' ./internal/sta/ ./internal/core/

# Parallel STA / concurrent-trial benchmarks, recorded as benchstat-style
# records in BENCH_pr2.json (cmd/benchjson converts the bench text and
# derives per-group speedups against the j=1 serial baseline).
bench:
	$(GO) test -run '^$$' -bench 'Parallel' -benchmem -count=1 . | $(GO) run ./cmd/benchjson > BENCH_pr2.json

# 30-second fuzz pass over the design reader's validation layer.
fuzz:
	$(GO) test ./internal/edaio/ -run '^$$' -fuzz FuzzReadDesign -fuzztime 30s

help:
	@echo "tier1            lint + build + test + race (the merge gate)"
	@echo "lint             go vet + skewlint invariant analyzers (docs/ANALYSIS.md)"
	@echo "lint-fix-report  skewlint -json -> LINT_report.json (never fails the build)"
	@echo "build            go build ./..."
	@echo "test             go test ./..."
	@echo "race             -short suite under -race, then 3x the Parallel equivalence tests"
	@echo "bench            parallel STA benchmarks -> BENCH_pr2.json"
	@echo "fuzz             30s fuzz of the design reader"
