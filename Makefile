# Developer entry points. `make tier1` is the gate a change must pass:
# vet + build + the full test suite, then the suite again under the race
# detector in -short mode (which still runs a real optimization flow via
# the core stage-subset test, just not the multi-minute matrices).

GO ?= go

.PHONY: tier1 vet build test race bench fuzz

tier1: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...
	$(GO) test -race -count=3 -run 'Parallel' ./internal/sta/ ./internal/core/

# Parallel STA / concurrent-trial benchmarks, recorded as benchstat-style
# records in BENCH_pr2.json (cmd/benchjson converts the bench text and
# derives per-group speedups against the j=1 serial baseline).
bench:
	$(GO) test -run '^$$' -bench 'Parallel' -benchmem -count=1 . | $(GO) run ./cmd/benchjson > BENCH_pr2.json

# 30-second fuzz pass over the design reader's validation layer.
fuzz:
	$(GO) test ./internal/edaio/ -run '^$$' -fuzz FuzzReadDesign -fuzztime 30s
