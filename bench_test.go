package skewvar

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus micro-benchmarks of the substrates and ablations of
// the design choices called out in DESIGN.md. Each table/figure benchmark
// regenerates the corresponding artifact through internal/exp — the same
// code path as cmd/exptab — and logs it, so
//
//	go test -bench=. -benchmem
//
// reproduces the evaluation end to end. Scales are the bench defaults
// (DESIGN.md §5); pass -timeout 0 for comfort on slow machines.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"skewvar/internal/core"
	"skewvar/internal/ctree"
	"skewvar/internal/cts"
	"skewvar/internal/eco"
	"skewvar/internal/edaio/atomicio"
	"skewvar/internal/exp"
	"skewvar/internal/geom"
	"skewvar/internal/lp"
	"skewvar/internal/lut"
	"skewvar/internal/obs"
	"skewvar/internal/power"
	"skewvar/internal/route"
	"skewvar/internal/serve"
	"skewvar/internal/sta"
	"skewvar/internal/testgen"
)

// benchConfig is the scale used for the committed EXPERIMENTS.md numbers:
// large enough to show the paper's shapes, small enough to regenerate in
// CPU-minutes.
func benchConfig() exp.Config {
	return exp.Config{
		NumFFs:     280,
		TopPairs:   220,
		ModelKind:  "ridge",
		TrainCases: 24,
		TrainMoves: 16,
		LocalIters: 10,
		Seed:       1,
	}
}

// ---------------------------------------------------------------------------
// Tables and figures
// ---------------------------------------------------------------------------

func BenchmarkTable3Corners(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := exp.Table3()
		if i == 0 {
			b.Logf("\n%s", tb.Render())
		}
	}
}

func BenchmarkTable4Testcases(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		envs, err := exp.BuildTestcases(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", exp.Table4(envs).Render())
		}
	}
}

func BenchmarkFigure2DelayRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, tb, err := exp.Figure2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb.Render())
		}
	}
}

func BenchmarkFigure5ModelAccuracy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, tb, err := exp.Figure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb.Render())
		}
	}
}

func BenchmarkFigure6BestMove(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, tb, err := exp.Figure6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb.Render())
		}
	}
}

// benchTable5One runs the paper's three flows on one testcase.
func benchTable5One(b *testing.B, variant string) {
	cfg := benchConfig()
	_, ch := exp.Technology()
	model, err := exp.TrainedModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	envs, err := exp.BuildTestcases(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var env exp.Env
	for _, e := range envs {
		if e.Variant.Name == variant {
			env = e
		}
	}
	if env.Design == nil {
		b.Fatalf("variant %s not found", variant)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := core.RunFlows(context.Background(), env.Timer, ch, env.Design, model, core.FlowConfig{
			TopPairs: cfg.TopPairs,
			Local:    core.LocalConfig{MaxIters: cfg.LocalIters, Seed: cfg.Seed},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s: orig %.0f | global %.0f [%.2f] | local %.0f [%.2f] | global-local %.0f [%.2f]",
				variant, fr.Orig.SumVarPS,
				fr.Global.SumVarPS, fr.Global.Norm,
				fr.Local.SumVarPS, fr.Local.Norm,
				fr.GLocal.SumVarPS, fr.GLocal.Norm)
		}
	}
}

func BenchmarkTable5_CLS1v1(b *testing.B) { benchTable5One(b, "CLS1v1") }
func BenchmarkTable5_CLS1v2(b *testing.B) { benchTable5One(b, "CLS1v2") }
func BenchmarkTable5_CLS2v1(b *testing.B) { benchTable5One(b, "CLS2v1") }

func BenchmarkFigure8Iterative(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, tb, err := exp.Figure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n(guided %d iterations, ΣV0 %.0f)", tb.Render(), len(res.Records), res.SumVar0)
		}
	}
}

func BenchmarkFigure9SkewRatios(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, tb, err := exp.Figure9(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", tb.Render())
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md)
// ---------------------------------------------------------------------------

// Ablation: the paper's literal free-Δ LP formulation (per-corner deltas
// guarded only by the row-generated W-window (11)) versus the realizable
// wire/gate knob parameterization used by default.
func BenchmarkAblationFreeDeltaLP(b *testing.B) {
	cfg := benchConfig()
	_, ch := exp.Technology()
	envs, err := exp.BuildTestcases(cfg)
	if err != nil {
		b.Fatal(err)
	}
	env := envs[0]
	pairs := env.Design.TopPairs(cfg.TopPairs)
	a0 := env.Timer.Analyze(env.Design.Tree)
	alphas := sta.Alphas(a0, pairs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		param, err := core.GlobalOpt(context.Background(), env.Timer, ch, env.Design, alphas, core.GlobalConfig{
			TopPairs: cfg.TopPairs,
		})
		if err != nil {
			b.Fatal(err)
		}
		free, err := core.GlobalOpt(context.Background(), env.Timer, ch, env.Design, alphas, core.GlobalConfig{
			TopPairs: cfg.TopPairs, FreeDelta: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("parameterized knobs: ΣV %.0f → %.0f (%.1f%%, %d arcs)",
				param.SumVar0, param.SumVar, 100*(1-param.SumVar/param.SumVar0), param.ArcsRebuilt)
			b.Logf("free per-corner Δ:   ΣV %.0f → %.0f (%.1f%%, %d arcs)",
				free.SumVar0, free.SumVar, 100*(1-free.SumVar/free.SumVar0), free.ArcsRebuilt)
		}
	}
}

// Ablation: local optimization guided by the trained model, by the best
// analytic delta estimator, and by random move selection (Figure 8's
// baseline).
func BenchmarkAblationLocalGuidance(b *testing.B) {
	cfg := benchConfig()
	model, err := exp.TrainedModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	envs, err := exp.BuildTestcases(cfg)
	if err != nil {
		b.Fatal(err)
	}
	env := envs[0]
	pairs := env.Design.TopPairs(cfg.TopPairs)
	a0 := env.Timer.Analyze(env.Design.Tree)
	alphas := sta.Alphas(a0, pairs)
	run := func(m core.StageModel, random bool) *core.LocalResult {
		res, err := core.LocalOpt(context.Background(), env.Timer, env.Design, alphas, core.LocalConfig{
			Model: m, TopPairs: cfg.TopPairs, MaxIters: cfg.LocalIters,
			Seed: cfg.Seed, Random: random,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml := run(model, false)
		an := run(core.DeltaBaselines()[core.RSMTD2M], false)
		rnd := run(model, true)
		if i == 0 {
			b.Logf("model-guided:    ΣV %.0f → %.0f (%d accepted)", ml.SumVar0, ml.SumVar, len(ml.Records))
			b.Logf("analytic-guided: ΣV %.0f → %.0f (%d accepted)", an.SumVar0, an.SumVar, len(an.Records))
			b.Logf("random moves:    ΣV %.0f → %.0f (%d accepted)", rnd.SumVar0, rnd.SumVar, len(rnd.Records))
		}
	}
}

// Ablation: the paper's §5.1 observation that a 0ps CTS skew target steers
// the tool to the smallest skew — swept 0..250ps in 50ps steps.
func BenchmarkAblationSkewTargetSweep(b *testing.B) {
	base, _ := exp.Technology()
	view, err := base.SubCorners("c0", "c1", "c3")
	if err != nil {
		b.Fatal(err)
	}
	tm := sta.New(view)
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(900, 900))
	rng := rand.New(rand.NewSource(17))
	sinks := make([]geom.Point, 220)
	for i := range sinks {
		sinks[i] = geom.Pt(rng.Float64()*900, rng.Float64()*900)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for target := 0.0; target <= 250; target += 50 {
			tr, err := ctsSynth(tm, die, sinks, target)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				a := tm.Analyze(tr)
				minL, maxL := a.MaxLat[0], 0.0
				for _, s1 := range tr.Sinks() {
					l := a.Latency(0, s1)
					if l < minL {
						minL = l
					}
					if l > maxL {
						maxL = l
					}
				}
				b.Logf("skew target %3.0fps → achieved global skew %.0fps at c0", target, maxL-minL)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates
// ---------------------------------------------------------------------------

func BenchmarkSTAAnalyze(b *testing.B) {
	base, _ := exp.Technology()
	d, tm, err := testgen.Build(base, testgen.CLS1v1(280))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Analyze(d.Tree).Release()
	}
}

// BenchmarkSTAAnalyzeParallel sweeps the timer's per-corner worker pool.
// "warm" reuses the net cache across analyses (the flow's steady state);
// "cold" flushes it first, so the RC build cost is measured too. j=1 is the
// exact serial path the speedups are measured against.
func BenchmarkSTAAnalyzeParallel(b *testing.B) {
	base, _ := exp.Technology()
	d, tm, err := testgen.Build(base, testgen.CLS1v1(280))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []string{"warm", "cold"} {
		for _, j := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/j=%d", mode, j), func(b *testing.B) {
				tm.Workers = j
				tm.FlushNetCache()
				if mode == "warm" {
					tm.Analyze(d.Tree)
				}
				pre := tm.CacheStats()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if mode == "cold" {
						tm.FlushNetCache()
					}
					tm.Analyze(d.Tree).Release()
				}
				b.StopTimer()
				// OBSMETRIC lines ride the bench log into BENCH_*.json via
				// cmd/benchjson. Cache counters are cumulative on the timer,
				// so report the delta this sub-benchmark produced.
				post := tm.CacheStats()
				if traffic := (post.Hits - pre.Hits) + (post.Misses - pre.Misses); traffic > 0 {
					b.Logf("OBSMETRIC sta_cache_hit_rate/%s/j=%d=%.4f",
						mode, j, float64(post.Hits-pre.Hits)/float64(traffic))
				}
			})
		}
	}
}

// BenchmarkLocalMovesParallel sweeps the local optimizer's concurrent trial
// pool over a fixed 3-iteration run (identical accepted moves at every j).
func BenchmarkLocalMovesParallel(b *testing.B) {
	cfg := benchConfig()
	model, err := exp.TrainedModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	envs, err := exp.BuildTestcases(cfg)
	if err != nil {
		b.Fatal(err)
	}
	env := envs[0]
	pairs := env.Design.TopPairs(cfg.TopPairs)
	a0 := env.Timer.Analyze(env.Design.Tree)
	alphas := sta.Alphas(a0, pairs)
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.LocalOpt(context.Background(), env.Timer, env.Design, alphas, core.LocalConfig{
					Model: model, TopPairs: cfg.TopPairs, MaxIters: 3,
					Seed: cfg.Seed, Workers: j,
				}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if j != 1 {
				return
			}
			// One instrumented run outside the timed loop (the timed loop
			// stays Obs-nil so the sweep measures the uninstrumented path);
			// the accept rate is identical at every j, so j=1 suffices.
			rec := obs.New()
			if _, err := core.LocalOpt(context.Background(), env.Timer, env.Design, alphas, core.LocalConfig{
				Model: model, TopPairs: cfg.TopPairs, MaxIters: 3,
				Seed: cfg.Seed, Workers: j, Obs: rec,
			}); err != nil {
				b.Fatal(err)
			}
			snap := rec.Snapshot()
			if tried := snap.Counters["local.moves.tried"]; tried > 0 {
				b.Logf("OBSMETRIC local_move_accept_rate=%.4f",
					float64(snap.Counters["local.moves.accepted"])/float64(tried))
			}
		})
	}
}

func BenchmarkLUTCharacterize(b *testing.B) {
	base, _ := exp.Technology()
	for i := 0; i < b.N; i++ {
		lut.Characterize(base)
	}
}

func BenchmarkRSMT(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	pins := make([]geom.Point, 30)
	for i := range pins {
		pins[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.RSMT(pins)
	}
}

func BenchmarkLPSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n, m := 300, 400
	build := func() *lp.Problem {
		p := lp.NewProblem()
		x0 := make([]float64, n)
		for j := 0; j < n; j++ {
			x0[j] = rng.Float64()
			p.AddVar(0, 2, rng.Float64(), "")
		}
		for r := 0; r < m; r++ {
			var idx []int
			var coef []float64
			var lhs float64
			for k := 0; k < 6; k++ {
				j := rng.Intn(n)
				c := 0.2 + rng.Float64()
				idx = append(idx, j)
				coef = append(coef, c)
				lhs += c * x0[j]
			}
			p.AddConstraint(lp.LE, lhs+0.1, idx, coef)
		}
		return p
	}
	probs := make([]*lp.Problem, b.N)
	for i := range probs {
		probs[i] = build()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sol, err := probs[i].Solve(lp.Options{}); err != nil || sol.Status != lp.Optimal {
			b.Fatalf("solve failed: %v %v", err, sol)
		}
	}
}

func BenchmarkMoveEnumeration(b *testing.B) {
	base, _ := exp.Technology()
	d, _, err := testgen.Build(base, testgen.CLS1v1(280))
	if err != nil {
		b.Fatal(err)
	}
	bufs := d.Tree.Buffers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eco.Enumerate(d.Tree, base, bufs[i%len(bufs)], d.Die)
	}
}

func BenchmarkMovePrediction(b *testing.B) {
	cfg := benchConfig()
	model, err := exp.TrainedModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	envs, err := exp.BuildTestcases(cfg)
	if err != nil {
		b.Fatal(err)
	}
	env := envs[0]
	pairs := env.Design.TopPairs(cfg.TopPairs)
	a0 := env.Timer.Analyze(env.Design.Tree)
	alphas := sta.Alphas(a0, pairs)
	sc := core.NewMoveScorer(env.Timer, env.Design.Tree, env.Design.Die, alphas, pairs, model)
	var moves []eco.Move
	for _, bid := range env.Design.Tree.Buffers() {
		moves = append(moves, eco.Enumerate(env.Design.Tree, env.Timer.Tech, bid, env.Design.Die)...)
		if len(moves) > 500 {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Gain(moves[i%len(moves)])
	}
}

// ctsSynth runs the baseline synthesizer at a given balancing skew target.
func ctsSynth(tm *sta.Timer, die geom.Rect, sinks []geom.Point, target float64) (*ctree.Tree, error) {
	return cts.Synthesize(tm, die, geom.Pt(die.W()/2, 0), sinks, cts.Options{TargetSkewPS: target, BalanceIters: 16})
}

// Extension (paper future work iii): library cells less sensitive to corner
// variation. The same design is re-timed under progressively compressed
// corner factors; skew variation should fall with sensitivity.
func BenchmarkExtensionLowSensitivityCells(b *testing.B) {
	base, _ := exp.Technology()
	rng := rand.New(rand.NewSource(23))
	die := geom.NewRect(geom.Pt(0, 0), geom.Pt(800, 800))
	sinks := make([]geom.Point, 200)
	for i := range sinks {
		sinks[i] = geom.Pt(rng.Float64()*800, rng.Float64()*800)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, compress := range []float64{0, 0.3, 0.6} {
			low := base.LowSensitivityVariant(compress)
			view, err := low.SubCorners("c0", "c1", "c3")
			if err != nil {
				b.Fatal(err)
			}
			tm := sta.New(view)
			tr, err := cts.Synthesize(tm, die, geom.Pt(400, 0), sinks, cts.Options{})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				ss := tr.Sinks()
				var pairs []ctree.SinkPair
				for j := 0; j+1 < len(ss); j += 2 {
					pairs = append(pairs, ctree.SinkPair{A: ss[j], B: ss[j+1], Crit: 1})
				}
				a := tm.Analyze(tr)
				al := sta.Alphas(a, pairs)
				b.Logf("sensitivity compression %.1f → ΣV %.0f ps (alphas %.3v)",
					compress, sta.SumVariation(a, al, pairs), al)
			}
		}
	}
}

// Extension (paper future work iv): can a worse starting point (a clock
// network with larger skew variation) let the optimization reach a smaller
// final variation? Compares the full flow from a well-balanced CTS start
// against a coarsely balanced one.
func BenchmarkExtensionWorseStart(b *testing.B) {
	cfg := benchConfig()
	_, ch := exp.Technology()
	model, err := exp.TrainedModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	base, _ := exp.Technology()
	runFrom := func(balanceIters int) (float64, float64) {
		view, err := base.SubCorners("c0", "c1", "c3")
		if err != nil {
			b.Fatal(err)
		}
		tm := sta.New(view)
		rng := rand.New(rand.NewSource(29))
		die := geom.NewRect(geom.Pt(0, 0), geom.Pt(900, 900))
		sinks := make([]geom.Point, cfg.NumFFs)
		for i := range sinks {
			sinks[i] = geom.Pt(rng.Float64()*900, rng.Float64()*900)
		}
		tr, err := cts.Synthesize(tm, die, geom.Pt(450, 0), sinks, cts.Options{BalanceIters: balanceIters})
		if err != nil {
			b.Fatal(err)
		}
		ss := tr.Sinks()
		var pairs []ctree.SinkPair
		for j := 0; j+1 < len(ss); j += 2 {
			pairs = append(pairs, ctree.SinkPair{A: ss[j], B: ss[j+1], Crit: rng.Float64()})
		}
		d := &ctree.Design{Name: "worsestart", Tree: tr, Pairs: pairs, Die: die,
			CornerNames: []string{"c0", "c1", "c3"}}
		fr, err := core.RunFlows(context.Background(), tm, ch, d, model, core.FlowConfig{
			TopPairs: cfg.TopPairs,
			Local:    core.LocalConfig{MaxIters: cfg.LocalIters, Seed: cfg.Seed},
		})
		if err != nil {
			b.Fatal(err)
		}
		return fr.Orig.SumVarPS, fr.GLocal.SumVarPS
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		good0, goodN := runFrom(0) // default (well-balanced) start
		bad0, badN := runFrom(1)   // coarsely balanced start
		if i == 0 {
			b.Logf("balanced start:  ΣV %.0f → %.0f", good0, goodN)
			b.Logf("worse start:     ΣV %.0f → %.0f", bad0, badN)
		}
	}
}

// Extension (paper future work i): the downstream power/area benefit of
// reduced skew variation, measured as the synthetic datapath-repair cost
// (hold/setup fixing buffers) before and after optimization.
func BenchmarkExtensionFixCostBenefit(b *testing.B) {
	cfg := benchConfig()
	model, err := exp.TrainedModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	envs, err := exp.BuildTestcases(cfg)
	if err != nil {
		b.Fatal(err)
	}
	env := envs[0]
	pairs := env.Design.TopPairs(cfg.TopPairs)
	a0 := env.Timer.Analyze(env.Design.Tree)
	alphas := sta.Alphas(a0, pairs)
	// Datapaths scale with the inverse normalization factor per corner.
	scale := make([]float64, len(alphas))
	for k, al := range alphas {
		if al > 0 {
			scale[k] = 1 / al
		} else {
			scale[k] = 1
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.LocalOpt(context.Background(), env.Timer, env.Design, alphas, core.LocalConfig{
			Model: model, TopPairs: cfg.TopPairs, MaxIters: cfg.LocalIters, Seed: cfg.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			aN := env.Timer.Analyze(res.Tree)
			before := power.EstimateFixCost(env.Design.Tree, pairs, a0.K,
				func(k int, s ctree.NodeID) float64 { return a0.Latency(k, s) }, scale, power.FixCostParams{})
			after := power.EstimateFixCost(res.Tree, pairs, aN.K,
				func(k int, s ctree.NodeID) float64 { return aN.Latency(k, s) }, scale, power.FixCostParams{})
			b.Logf("fix cost before: %d hold + %d setup violations → %d buffers (%.0f ps total)",
				before.HoldViolations, before.SetupViolations, before.FixBuffers, before.HoldPS+before.SetupPS)
			b.Logf("fix cost after:  %d hold + %d setup violations → %d buffers (%.0f ps total)",
				after.HoldViolations, after.SetupViolations, after.FixBuffers, after.HoldPS+after.SetupPS)
		}
	}
}

// Ablation: the paper's local pass is wall-clock-bounded (≈70 minutes per
// golden evaluation on its testbed), while ours runs its full iteration
// budget. Restricting the local pass to a paper-like budget restores the
// paper's "global is the stronger arm" ordering.
func BenchmarkAblationLocalBudget(b *testing.B) {
	cfg := benchConfig()
	_, ch := exp.Technology()
	model, err := exp.TrainedModel(cfg)
	if err != nil {
		b.Fatal(err)
	}
	envs, err := exp.BuildTestcases(cfg)
	if err != nil {
		b.Fatal(err)
	}
	env := envs[0]
	pairs := env.Design.TopPairs(cfg.TopPairs)
	a0 := env.Timer.Analyze(env.Design.Tree)
	alphas := sta.Alphas(a0, pairs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := core.GlobalOpt(context.Background(), env.Timer, ch, env.Design, alphas, core.GlobalConfig{
			TopPairs: cfg.TopPairs, MaxPairsPerLP: cfg.TopPairs,
		})
		if err != nil {
			b.Fatal(err)
		}
		budgeted, err := core.LocalOpt(context.Background(), env.Timer, env.Design, alphas, core.LocalConfig{
			Model: model, TopPairs: cfg.TopPairs, MaxIters: 3, Seed: cfg.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("global (full):          ΣV %.0f → %.0f (%.1f%%)",
				g.SumVar0, g.SumVar, 100*(1-g.SumVar/g.SumVar0))
			b.Logf("local (3-iter budget):  ΣV %.0f → %.0f (%.1f%%)",
				budgeted.SumVar0, budgeted.SumVar, 100*(1-budgeted.SumVar/budgeted.SumVar0))
		}
	}
}

// BenchmarkGroupCommitParallel measures the journal appender's
// write+fsync amortization: 8*GOMAXPROCS concurrent appenders against one
// GroupAppender across the batch sweep (fsync blocks in a syscall, so the
// contention that forms batches needs goroutines, not CPUs). batch=1 is
// the fsync-per-line baseline skewd shipped with; the OBSMETRIC line
// records how many fsyncs each appended line actually cost. Each
// iteration checksum-frames its line before appending, exactly as the
// skewd journal does, so the pr9→pr10 diff of this benchmark bounds what
// the CRC32C envelope costs on the append path (the bench-gate holds it
// to <= 1.15x against the unframed pr9 numbers).
func BenchmarkGroupCommitParallel(b *testing.B) {
	payload := []byte(`{"seq":1,"kind":"submit","job":"j000001","spec":{"flow":"local","pairs":40}}`)
	framed, err := atomicio.EncodeFrame(payload)
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name   string
		batch  int
		window time.Duration
	}{
		{"batch=1", 1, 0},
		{"batch=8", 8, 2 * time.Millisecond},
		{"batch=32", 32, 2 * time.Millisecond},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			g, err := atomicio.OpenGroupAppender(filepath.Join(b.TempDir(), "jobs.journal"),
				atomicio.GroupOptions{MaxBatch: cfg.batch, Window: cfg.window})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(framed) + 1))
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					line, err := atomicio.EncodeFrame(payload)
					if err != nil {
						b.Error(err)
						return
					}
					if err := g.AppendLine(line); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if lines := g.Lines(); lines > 0 {
				b.Logf("OBSMETRIC groupcommit_fsyncs_per_line/%s=%.4f",
					cfg.name, float64(g.Syncs())/float64(lines))
			}
			if err := g.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkJournalReplayParallel measures spool recovery — the scan,
// checksum-verify, decode, and fold of a full journal into the admitted
// set — over a 1024-job (3072-record) spool, in both on-disk formats:
// framed lines pay the CRC32C verification, legacy lines only the format
// sniff. Parallel goroutines each replay the whole spool (replay is
// read-only), matching a coordinator auditing many replica spools at
// once; ns/op is one full replay and MB/s the verified journal
// throughput.
func BenchmarkJournalReplayParallel(b *testing.B) {
	const jobs = 1024
	build := func(framed bool) ([]byte, int64) {
		var buf []byte
		seq := 0
		add := func(format string, args ...interface{}) {
			seq++
			line := []byte(fmt.Sprintf(`{"seq":%d,`+format+`}`, append([]interface{}{seq}, args...)...))
			if framed {
				f, err := atomicio.EncodeFrame(line)
				if err != nil {
					b.Fatal(err)
				}
				line = f
			}
			buf = append(buf, line...)
			buf = append(buf, '\n')
		}
		for i := 0; i < jobs; i++ {
			id := fmt.Sprintf("j%06d", i)
			add(`"kind":"submit","job":%q,"spec":{"flow":"local","pairs":40}`, id)
			add(`"kind":"start","job":%q`, id)
			add(`"kind":"finish","job":%q,"state":"done"`, id)
		}
		return buf, int64(len(buf))
	}
	for _, cfg := range []struct {
		name   string
		framed bool
	}{
		{"framed", true},
		{"legacy", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			dir := b.TempDir()
			buf, size := build(cfg.framed)
			if err := os.WriteFile(filepath.Join(dir, "jobs.journal"), buf, 0o644); err != nil {
				b.Fatal(err)
			}
			jj, err := serve.ReadJournalJobs(dir)
			if err != nil {
				b.Fatal(err)
			}
			if len(jj) != jobs {
				b.Fatalf("replay folded %d jobs, want %d", len(jj), jobs)
			}
			b.SetBytes(size)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := serve.ReadJournalJobs(dir); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
